/**
 * @file
 * Predictive race analysis over recorded traces.
 *
 * A recorded run that *passed* still constrains what other runs of the
 * same program could do: any pair of conflicting accesses (same
 * variable, at least one write, different wavefronts) that is not
 * ordered by the trace's happens-before relation (predict/hb.hh) was
 * ordered only by scheduling accident, and some legal reordering can
 * make the pair overlap — exactly the window in which the tester's
 * value checks observe stale or torn data. The predictive pass
 * enumerates those pairs from ONE passing trace, instead of waiting for
 * a fuzzing campaign to stumble into the schedule that manifests them.
 *
 * Every candidate is backed by evidence, not just clock arithmetic:
 * the verifier replays a pair-prefix subsequence of the schedule
 * (both wavefronts' histories up to the pair) through the deterministic
 * replayer, probing a ladder of issue delays (SchedulePerturbation) for
 * the earlier episode until the pair overlaps. A candidate whose
 * witness replay fails (ScopeViolation / ValueMismatch / ...) is
 * CONFIRMED and carries the exact perturbation as a reproducible
 * witness; one that survives every probe is DEMOTED — reported, but
 * explicitly marked unconfirmed.
 */

#ifndef DRF_PREDICT_PREDICT_HH
#define DRF_PREDICT_PREDICT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "predict/hb.hh"
#include "tester/tester_failure.hh"
#include "trace/repro.hh"

namespace drf
{

/** One side of a predicted race: an access within an episode. */
struct AccessSite
{
    std::size_t scheduleIndex = 0; ///< index into the trace's schedule
    std::uint64_t episodeId = 0;
    std::uint32_t wavefront = 0;
    unsigned cu = 0;
    Scope scope = Scope::None;
    VarId var = 0;        ///< the conflicting variable
    bool isWrite = false; ///< this side's access kind
};

/** A conflicting access pair unordered by happens-before. */
struct PredictedRace
{
    AccessSite first;  ///< earlier in the observed sync order
    AccessSite second; ///< later in the observed sync order
    /** Why no release/acquire path orders the pair (the failed sync). */
    std::string syncPath;

    // Witness (filled by verification).
    bool verified = false;  ///< the verifier ran on this candidate
    bool confirmed = false; ///< a witness replay manifested a failure
    /** Failure class of the confirming replay (None when demoted). */
    FailureClass witnessClass = FailureClass::None;
    /** Issue delay applied to @c first in the confirming replay. */
    Tick witnessDelay = 0;
    /** Table V-style report of the confirming replay (empty if none). */
    std::string witnessReport;
};

/** Tuning knobs for predictRaces. */
struct PredictOptions
{
    /** Re-execute witnesses to confirm/demote (else report raw). */
    bool verify = true;
    /** Cap on candidates carried into the report (and verified). */
    std::size_t maxCandidates = 64;
    /** Delay-ladder depth per candidate during verification. */
    unsigned maxProbes = 8;
};

/** Outcome of the predictive pass on one trace. */
struct PredictReport
{
    HbOrderSource orderSource = HbOrderSource::ScheduleOrder;
    std::size_t eventsAnalyzed = 0; ///< trace events consumed by the HB build
    std::size_t pairsChecked = 0;   ///< conflicting pairs tested for order
    std::size_t candidates = 0;     ///< HB-unordered pairs found (pre-cap)
    std::size_t replays = 0;        ///< witness replays executed
    std::vector<PredictedRace> races; ///< up to maxCandidates, verified

    std::size_t confirmedCount() const;
    std::size_t demotedCount() const;
};

/**
 * Run the predictive pass on @p trace: build the happens-before model,
 * enumerate HB-unordered conflicting access pairs, and (by default)
 * verify each through witness replays. Deterministic for a given trace.
 */
PredictReport predictRaces(const ReproTrace &trace,
                           const PredictOptions &opts = {});

/**
 * The pair-prefix schedule the verifier replays for a candidate: both
 * wavefronts' episodes up to and including the pair. Exposed so tools
 * can save the witness alongside the report.
 */
EpisodeSchedule witnessSchedule(const ReproTrace &trace,
                                const PredictedRace &race);

/** JSON rendering of a PredictReport (shrink_repro predict output). */
std::string predictReportJson(const ReproTrace &trace,
                              const PredictReport &report);

} // namespace drf

#endif // DRF_PREDICT_PREDICT_HH
