/**
 * @file
 * Bounded stateless model checking: the `explore` campaign strategy.
 *
 * Where random/sweep/guided vary the *configuration*, ExploreSource
 * varies the *schedule*: it records one base run of a single preset,
 * then systematically re-executes the same episode schedule under
 * issue-delay perturbations (trace/schedule.hh) that flip the order of
 * dependent synchronization operations — a DPOR-flavored walk over the
 * interleaving space, bounded by an explicit budget.
 *
 * From each executed interleaving the source derives the next frontier:
 * every adjacent pair of acquires from different wavefronts whose
 * episodes are dependent (conflict on a variable with at least one
 * write, or contend on the same sync variable) yields a child
 * perturbation that delays the earlier episode past the later one's
 * acquire. A sleep set of already-scheduled flips (keyed by the episode
 * pair) prunes re-exploration, and a per-trace flip cap keeps the
 * branching factor bounded.
 *
 * Everything is deterministic at any worker count: shard bodies only
 * replay (bit-exact) and stash their event streams in per-seed slots;
 * all frontier expansion happens in report(), which the adaptive loop
 * calls strictly in shard-index order. The source also runs the
 * predictive pass (predict/predict.hh) on the base trace and publishes
 * its triage through ShardSource::predictTriage(), so explore campaign
 * JSON carries the predicted-race block.
 */

#ifndef DRF_PREDICT_EXPLORE_HH
#define DRF_PREDICT_EXPLORE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "guidance/shard_source.hh"
#include "predict/predict.hh"
#include "trace/repro.hh"

namespace drf
{

/** Knobs for the explore strategy. */
struct ExploreOptions
{
    /** Interleaving budget: max perturbed replays issued as shards. */
    std::size_t budget = 64;
    /** Shards per adaptive-campaign batch. */
    std::size_t batchSize = 4;
    /** Frontier expansions taken from any one executed interleaving. */
    std::size_t maxFlipsPerTrace = 8;
    /** Predictive pass run on the base trace (triage block). */
    PredictOptions predict;
    /** Skip the predictive pass (bench / frontier-only runs). */
    bool runPredict = true;
};

/** Schedule-exploration shard source (see file header). */
class ExploreSource : public ShardSource
{
  public:
    ExploreSource(const GpuTestPreset &preset,
                  const ExploreOptions &opts = {});

    Strategy strategy() const override { return Strategy::Explore; }
    std::vector<ShardSpec> nextBatch() override;
    void report(const ShardOutcome &outcome,
                const ShardFeedback &feedback) override;

    std::optional<GpuTestPreset>
    presetForSeed(std::uint64_t seed) const override;

    std::optional<PredictTriage> predictTriage() const override;

    /** The recorded base trace the exploration perturbs. */
    const ReproTrace &baseTrace() const { return _base; }

    /** Interleavings issued as shards so far. */
    std::size_t issued() const { return _issued; }

    /**
     * Failure classes observed across the explored interleavings (the
     * base run excluded). The explorer's product is this set — which
     * failure modes are schedule-reachable from the recorded run — not
     * just the lowest-index failure the campaign result keeps.
     */
    const std::map<FailureClass, std::size_t> &failuresByClass() const
    {
        return _failuresByClass;
    }

  private:
    /** One scheduled (or executed) interleaving. */
    struct Pending
    {
        SchedulePerturbation perturb;
        std::vector<TraceEvent> events; ///< filled by the shard body
    };

    /**
     * Expand the frontier with the flips visible in @p events, composed
     * onto @p parent. Called from the ctor (base trace) and report()
     * (executed children) only — never from shard bodies.
     */
    void expandFrontier(const std::vector<TraceEvent> &events,
                        const SchedulePerturbation &parent);

    GpuTestPreset _preset;
    ExploreOptions _opts;
    ReproTrace _base;
    PredictReport _predict;

    std::deque<SchedulePerturbation> _frontier;
    std::set<std::pair<std::uint64_t, std::uint64_t>> _sleep;
    std::map<std::uint64_t, Pending> _pending; ///< by shard seed
    std::mutex _mutex; ///< guards _pending's event slots during a batch
    std::size_t _issued = 0;
    std::map<FailureClass, std::size_t> _failuresByClass;
};

} // namespace drf

#endif // DRF_PREDICT_EXPLORE_HH
