#include "predict/hb.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>

#include "mem/scope.hh"

namespace drf
{

namespace
{

/** Unscoped episodes carry conservative device-wide semantics. */
Scope
effectiveScope(Scope s)
{
    return s == Scope::None ? Scope::Gpu : s;
}

void
joinClock(std::vector<std::uint32_t> &into,
          const std::vector<std::uint32_t> &from)
{
    for (std::size_t i = 0; i < from.size(); ++i)
        into[i] = std::max(into[i], from[i]);
}

/** One sync completion in observed order. */
struct SyncOp
{
    std::size_t idx = 0; ///< schedule index
    Tick tick = 0;
    Scope scope = Scope::None;
    bool acquire = false;
};

} // namespace

const char *
hbOrderSourceName(HbOrderSource source)
{
    switch (source) {
      case HbOrderSource::SyncEvents: return "sync_events";
      case HbOrderSource::EpisodeMarkers: return "episode_markers";
      case HbOrderSource::ScheduleOrder: return "schedule_order";
    }
    return "?";
}

HbModel
HbModel::build(const ReproTrace &trace)
{
    HbModel m;
    const std::size_t n = trace.schedule.size();
    m._sync.resize(n);
    m._agent.resize(n);
    m._cu.resize(n);
    m._pos.resize(n);
    m._eventsAnalyzed = trace.events.size();

    const unsigned wfs_per_cu = std::max(1u, trace.tester.wfsPerCu);
    std::unordered_map<std::uint64_t, std::size_t> by_id;
    by_id.reserve(n);
    std::uint32_t max_agent = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Episode &e = trace.schedule.episodes[i];
        m._agent[i] = e.wavefrontId;
        m._cu[i] = e.wavefrontId / wfs_per_cu;
        max_agent = std::max(max_agent, e.wavefrontId);
        by_id.emplace(e.id, i);
    }
    m._numAgents = n == 0 ? 0 : max_agent + 1;

    // Per-wavefront program position: the schedule is generation order,
    // which respects each wavefront's episode sequence.
    std::vector<std::size_t> next_pos(m._numAgents, 0);
    for (std::size_t i = 0; i < n; ++i)
        m._pos[i] = next_pos[m._agent[i]]++;

    // Extract the observed sync order, best source first.
    std::vector<SyncOp> ops;
    ops.reserve(2 * n);
    for (const TraceEvent &ev : trace.events) {
        if (ev.kind != TraceEventKind::SyncAcquire &&
            ev.kind != TraceEventKind::SyncRelease) {
            continue;
        }
        auto it = by_id.find(ev.a);
        if (it == by_id.end())
            continue;
        SyncOp op;
        op.idx = it->second;
        op.tick = ev.tick;
        op.scope = static_cast<Scope>(ev.u8);
        op.acquire = ev.kind == TraceEventKind::SyncAcquire;
        ops.push_back(op);
    }
    if (!ops.empty()) {
        m._source = HbOrderSource::SyncEvents;
    } else {
        // Pre-v4 event streams: episode begin/end markers bracket the
        // acquire and release, so their order is the sync order; scopes
        // come from the schedule.
        for (const TraceEvent &ev : trace.events) {
            if (ev.kind != TraceEventKind::EpisodeIssue &&
                ev.kind != TraceEventKind::EpisodeRetire) {
                continue;
            }
            auto it = by_id.find(ev.a);
            if (it == by_id.end())
                continue;
            SyncOp op;
            op.idx = it->second;
            op.tick = ev.tick;
            op.scope = trace.schedule.episodes[it->second].scope;
            op.acquire = ev.kind == TraceEventKind::EpisodeIssue;
            ops.push_back(op);
        }
        m._source = ops.empty() ? HbOrderSource::ScheduleOrder
                                : HbOrderSource::EpisodeMarkers;
    }

    // Vector-clock state. W_cu[c] is the "written clock" of CU c: the
    // join of every release completed on that CU, i.e. the knowledge a
    // same-CU acquire inherits through the shared L1. R_gpu is the
    // globally drained knowledge: a GPU-scope release publishes its
    // whole CU's written clock (the drain flushes CTA-pending lines
    // too), and a GPU-scope acquire's flash invalidate subscribes to it.
    const std::size_t num_cus =
        n == 0 ? 0 : (max_agent / wfs_per_cu) + 1;
    std::vector<std::vector<std::uint32_t>> clock(
        m._numAgents, std::vector<std::uint32_t>(m._numAgents, 0));
    std::vector<std::vector<std::uint32_t>> w_cu(
        num_cus, std::vector<std::uint32_t>(m._numAgents, 0));
    std::vector<std::uint32_t> r_gpu(m._numAgents, 0);
    std::vector<bool> acquired(n, false), released(n, false);

    auto do_acquire = [&](std::size_t idx, Tick tick, Scope s) {
        const std::uint32_t a = m._agent[idx];
        const unsigned c = m._cu[idx];
        joinClock(clock[a], w_cu[c]);
        if (effectiveScope(s) != Scope::Cta)
            joinClock(clock[a], r_gpu);
        m._sync[idx].acqClock = clock[a];
        m._sync[idx].acqTick = tick;
        acquired[idx] = true;
    };
    auto do_release = [&](std::size_t idx, Tick tick, Scope s) {
        const std::uint32_t a = m._agent[idx];
        const unsigned c = m._cu[idx];
        m._sync[idx].relEpoch = ++clock[a][a];
        joinClock(w_cu[c], clock[a]);
        if (effectiveScope(s) != Scope::Cta)
            joinClock(r_gpu, w_cu[c]);
        m._sync[idx].relTick = tick;
        released[idx] = true;
    };

    for (const SyncOp &op : ops) {
        if (op.acquire) {
            if (!acquired[op.idx])
                do_acquire(op.idx, op.tick, op.scope);
        } else if (!released[op.idx]) {
            // An acquire marker may have been dropped by the recorder's
            // event cap: synthesize it so the clocks stay well-formed.
            if (!acquired[op.idx])
                do_acquire(op.idx, op.tick, op.scope);
            do_release(op.idx, op.tick, op.scope);
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        m._sync[i].observed = acquired[i] && released[i];

    // Episodes the event stream never covered (capped recorder, or no
    // events at all) are processed in schedule order — the recorded
    // generation order, which is a legal completion order.
    for (std::size_t i = 0; i < n; ++i) {
        const Scope s = trace.schedule.episodes[i].scope;
        if (!acquired[i])
            do_acquire(i, 0, s);
        if (!released[i])
            do_release(i, 0, s);
    }
    return m;
}

bool
HbModel::orderedBefore(std::size_t a, std::size_t b) const
{
    assert(a < _sync.size() && b < _sync.size());
    if (a == b)
        return false;
    if (_agent[a] == _agent[b])
        return _pos[a] < _pos[b];
    const EpisodeSync &rel = _sync[a];
    const EpisodeSync &acq = _sync[b];
    if (rel.relEpoch == 0 || acq.acqClock.size() <= _agent[a])
        return false;
    return acq.acqClock[_agent[a]] >= rel.relEpoch;
}

std::string
HbModel::explainUnordered(std::size_t a, std::size_t b,
                          const ReproTrace &trace) const
{
    const Episode &ea = trace.schedule.episodes[a];
    const Episode &eb = trace.schedule.episodes[b];
    const Scope sa = effectiveScope(ea.scope);
    const Scope sb = effectiveScope(eb.scope);

    std::ostringstream os;
    os << "episode " << ea.id << " (wf " << ea.wavefrontId << ", cu "
       << cuOf(a) << ", " << scopeName(ea.scope) << ") -> episode "
       << eb.id << " (wf " << eb.wavefrontId << ", cu " << cuOf(b)
       << ", " << scopeName(eb.scope) << "): ";

    if (cuOf(a) == cuOf(b)) {
        os << "same-CU pair, but the acquire (tick "
           << _sync[b].acqTick << ") completed before the release (tick "
           << _sync[a].relTick
           << ") — ordered by timing, not by synchronization";
        return os.str();
    }
    if (sa == Scope::Cta) {
        os << "cta-scoped release on cu " << cuOf(a)
           << " skipped the drain, and no later gpu-scoped release from"
              " that CU published its writes before the acquire";
        if (sb == Scope::Cta) {
            os << "; the cta-scoped acquire on cu " << cuOf(b)
               << " also skipped the flash invalidate";
        }
        return os.str();
    }
    if (sb == Scope::Cta) {
        os << "cta-scoped acquire on cu " << cuOf(b)
           << " skipped the flash invalidate, so the gpu-scoped drain"
              " from cu "
           << cuOf(a) << " was never observed";
        return os.str();
    }
    os << "gpu-scoped pair, but the acquire (tick " << _sync[b].acqTick
       << ") completed before the release (tick " << _sync[a].relTick
       << ") — ordered by timing, not by synchronization";
    return os.str();
}

} // namespace drf
