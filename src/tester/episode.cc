#include "tester/episode.hh"

#include <cassert>

namespace drf
{

void
Episode::rebuildIndexes()
{
    writes.clear();
    reads.clear();

    // Pass 1: collect the write set. One entry per variable; a later
    // store to the same variable overwrites the lane/value in place.
    for (std::uint32_t a = 0; a < _numActions; ++a) {
        for (std::uint32_t lane = 0; lane < laneCount(a); ++lane) {
            if (!laneActive(a, lane) || !laneIsStore(a, lane))
                continue;
            VarId var = laneVar(a, lane);
            if (WriteInfo *info = findWrite(var)) {
                info->lane = lane;
                info->value = laneValue(a, lane);
                info->completedAt = 0;
            } else {
                addWrite(var, lane, laneValue(a, lane));
            }
        }
    }

    // Pass 2: link every op to its write entry and collect the distinct
    // read list in first-load order.
    for (std::uint32_t a = 0; a < _numActions; ++a) {
        for (std::uint32_t lane = 0; lane < laneCount(a); ++lane) {
            if (!laneActive(a, lane))
                continue;
            std::size_t idx = _laneOffset[a] + lane;
            VarId var = _var[idx];
            std::uint32_t wi = kNoWrite;
            for (std::uint32_t w = 0; w < writes.size(); ++w) {
                if (writes[w].var == var) {
                    wi = w;
                    break;
                }
            }
            _writeIdx[idx] = wi;
            if (!laneIsStore(a, lane) && !readsVar(var))
                reads.push_back(var);
        }
    }
}

EpisodeGenerator::EpisodeGenerator(const VariableMap &vmap,
                                   const EpisodeGenConfig &cfg,
                                   Random &rng)
    : _vmap(&vmap), _cfg(cfg), _rng(&rng),
      _activeReaders(vmap.numVars(), 0),
      _activeWriters(vmap.numVars(), 0),
      _epWriterLane(vmap.numVars(), -1),
      _epWriteIdx(vmap.numVars(), Episode::kNoWrite),
      _epRead(vmap.numVars(), 0),
      _lastWriterCu(vmap.numVars(), -1),
      _ctaPendingOwner(vmap.numVars(), -1),
      _ctaPendingStamp(vmap.numVars(), 0)
{
    assert(vmap.numSyncVars() > 0 && vmap.numNormalVars() > 0);
    assert(cfg.wfsPerCu > 0);
}

std::optional<VarId>
EpisodeGenerator::pickStoreVar(unsigned cu)
{
    for (unsigned attempt = 0; attempt < _cfg.pickAttempts; ++attempt) {
        VarId var = _vmap->normalVar(static_cast<std::uint32_t>(
            _rng->below(_vmap->numNormalVars())));
        // Rule 1 and 2 against other active episodes.
        if (activeWriters(var) > 0 || activeReaders(var) > 0)
            continue;
        // Within the episode: one writer per variable, and never write
        // what any lane already read (lanes are unordered peers).
        if (_epWriterLane[var] >= 0 || _epRead[var])
            continue;
        // Rule 4: another CU's CTA-pending writes are not globally
        // visible yet; storing over them would race with the eventual
        // flush.
        if (_cfg.scopeMode == ScopeMode::Scoped &&
            _ctaPendingOwner[var] >= 0 &&
            _ctaPendingOwner[var] != static_cast<std::int32_t>(cu))
            continue;
        return var;
    }
    return std::nullopt;
}

std::optional<VarId>
EpisodeGenerator::pickLoadVar(unsigned lane, unsigned cu, Scope scope)
{
    for (unsigned attempt = 0; attempt < _cfg.pickAttempts; ++attempt) {
        VarId var = _vmap->normalVar(static_cast<std::uint32_t>(
            _rng->below(_vmap->numNormalVars())));
        // Rule 1 against other active episodes.
        if (activeWriters(var) > 0)
            continue;
        // Within the episode: only the writing lane itself may re-read
        // its own store (program order makes that deterministic).
        std::int32_t writer = _epWriterLane[var];
        if (writer >= 0 && static_cast<unsigned>(writer) != lane)
            continue;
        if (_cfg.scopeMode == ScopeMode::Scoped) {
            // Rule 4: another CU's CTA-pending value is not visible.
            if (_ctaPendingOwner[var] >= 0 &&
                _ctaPendingOwner[var] != static_cast<std::int32_t>(cu))
                continue;
            // Rule 3: a CTA-scoped acquire does not invalidate the L1,
            // so another CU's last write may still be shadowed by a
            // stale local copy.
            if (scope == Scope::Cta && _lastWriterCu[var] >= 0 &&
                _lastWriterCu[var] != static_cast<std::int32_t>(cu))
                continue;
        }
        return var;
    }
    return std::nullopt;
}

void
EpisodeGenerator::generateInto(Episode &episode, std::uint32_t wavefront_id)
{
    episode.beginBuild();
    episode.id = _nextEpisodeId++;
    episode.wavefrontId = wavefront_id;
    episode.syncVar = _vmap->syncVar(static_cast<std::uint32_t>(
        _rng->below(_vmap->numSyncVars())));
    // The scope draw only happens in scoped/racy modes: ScopeMode::None
    // must consume exactly the pre-scope RNG sequence so unscoped runs
    // stay bit-identical (pinned by the golden-digest tests).
    if (_cfg.scopeMode != ScopeMode::None) {
        episode.scope =
            _rng->pct(_cfg.ctaScopePct) ? Scope::Cta : Scope::Gpu;
    }
    unsigned cu = wavefront_id / _cfg.wfsPerCu;

    for (unsigned a = 0; a < _cfg.actionsPerEpisode; ++a) {
        episode.addAction(_cfg.lanes);
        for (unsigned lane = 0; lane < _cfg.lanes; ++lane) {
            if (!_rng->pct(_cfg.laneActivePct))
                continue;
            bool is_store = _rng->pct(_cfg.storePct);
            if (is_store) {
                auto var = pickStoreVar(cu);
                if (!var)
                    continue; // conflict space exhausted; skip the slot
                std::uint32_t value = _nextStoreValue++;
                std::uint32_t wi = episode.addWrite(*var, lane, value);
                episode.setStore(a, lane, *var, value, wi);
                _epWriterLane[*var] = static_cast<std::int32_t>(lane);
                _epWriteIdx[*var] = wi;
            } else {
                auto var = pickLoadVar(lane, cu, episode.scope);
                if (!var)
                    continue;
                episode.setLoad(a, lane, *var,
                                _epWriterLane[*var] >= 0
                                    ? _epWriteIdx[*var]
                                    : Episode::kNoWrite);
                if (!_epRead[*var]) {
                    _epRead[*var] = 1;
                    episode.reads.push_back(*var);
                }
            }
        }
    }

    // Publish the episode's footprint so episodes generated while this
    // one is active cannot conflict with it — and clear the per-episode
    // scratch for the next build (touched entries only, so the sweep
    // costs O(footprint), not O(numVars)).
    for (const Episode::WriteEntry &w : episode.writes) {
        ++_activeWriters[w.var];
        _epWriterLane[w.var] = -1;
        _epWriteIdx[w.var] = Episode::kNoWrite;
    }
    for (VarId var : episode.reads) {
        ++_activeReaders[var];
        _epRead[var] = 0;
    }
    ++_activeCount;
}

void
EpisodeGenerator::retire(const Episode &episode)
{
    for (const Episode::WriteEntry &w : episode.writes) {
        assert(_activeWriters[w.var] > 0);
        --_activeWriters[w.var];
    }
    for (VarId var : episode.reads) {
        assert(_activeReaders[var] > 0);
        --_activeReaders[var];
    }
    assert(_activeCount > 0);
    --_activeCount;
    if (_cfg.scopeMode == ScopeMode::Scoped)
        retireScoped(episode);
}

void
EpisodeGenerator::retireScoped(const Episode &episode)
{
    unsigned cu = episode.wavefrontId / _cfg.wfsPerCu;
    auto cui = static_cast<std::int32_t>(cu);
    for (const Episode::WriteEntry &w : episode.writes)
        _lastWriterCu[w.var] = cui;

    if (episode.scope == Scope::Cta) {
        // The CTA-scoped release skipped the write-through drain (VIPER)
        // or the dirty writeback (LRCC): the writes stay pending on this
        // CU until a later GPU-scoped release from the same CU flushes
        // them (rule 4).
        if (_ctaPendingByCu.size() <= cu)
            _ctaPendingByCu.resize(cu + 1);
        for (const Episode::WriteEntry &w : episode.writes) {
            if (_ctaPendingOwner[w.var] != cui)
                _ctaPendingByCu[cu].push_back(w.var);
            _ctaPendingOwner[w.var] = cui;
            _ctaPendingStamp[w.var] = _nextEpisodeId;
        }
        return;
    }

    // GPU-scoped (or None) release: its writeback+drain flushed every
    // CTA-pending write from this CU that predates this episode's
    // generation. Entries stamped later may have dirtied lines after the
    // release's sweep started, so they conservatively stay pending.
    if (_ctaPendingByCu.size() <= cu)
        return;
    auto &pend = _ctaPendingByCu[cu];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < pend.size(); ++i) {
        VarId var = pend[i];
        if (_ctaPendingOwner[var] == cui &&
            _ctaPendingStamp[var] <= episode.id) {
            _ctaPendingOwner[var] = -1;
            continue;
        }
        pend[keep++] = pend[i];
    }
    pend.resize(keep);
}

} // namespace drf
