#include "tester/episode.hh"

#include <cassert>

namespace drf
{

void
Episode::rebuildIndexes()
{
    writes.clear();
    reads.clear();

    // Pass 1: collect the write set. One entry per variable; a later
    // store to the same variable overwrites the lane/value in place.
    for (std::uint32_t a = 0; a < _numActions; ++a) {
        for (std::uint32_t lane = 0; lane < laneCount(a); ++lane) {
            if (!laneActive(a, lane) || !laneIsStore(a, lane))
                continue;
            VarId var = laneVar(a, lane);
            if (WriteInfo *info = findWrite(var)) {
                info->lane = lane;
                info->value = laneValue(a, lane);
                info->completedAt = 0;
            } else {
                addWrite(var, lane, laneValue(a, lane));
            }
        }
    }

    // Pass 2: link every op to its write entry and collect the distinct
    // read list in first-load order.
    for (std::uint32_t a = 0; a < _numActions; ++a) {
        for (std::uint32_t lane = 0; lane < laneCount(a); ++lane) {
            if (!laneActive(a, lane))
                continue;
            std::size_t idx = _laneOffset[a] + lane;
            VarId var = _var[idx];
            std::uint32_t wi = kNoWrite;
            for (std::uint32_t w = 0; w < writes.size(); ++w) {
                if (writes[w].var == var) {
                    wi = w;
                    break;
                }
            }
            _writeIdx[idx] = wi;
            if (!laneIsStore(a, lane) && !readsVar(var))
                reads.push_back(var);
        }
    }
}

EpisodeGenerator::EpisodeGenerator(const VariableMap &vmap,
                                   const EpisodeGenConfig &cfg,
                                   Random &rng)
    : _vmap(&vmap), _cfg(cfg), _rng(&rng),
      _activeReaders(vmap.numVars(), 0),
      _activeWriters(vmap.numVars(), 0),
      _epWriterLane(vmap.numVars(), -1),
      _epWriteIdx(vmap.numVars(), Episode::kNoWrite),
      _epRead(vmap.numVars(), 0)
{
    assert(vmap.numSyncVars() > 0 && vmap.numNormalVars() > 0);
}

std::optional<VarId>
EpisodeGenerator::pickStoreVar()
{
    for (unsigned attempt = 0; attempt < _cfg.pickAttempts; ++attempt) {
        VarId var = _vmap->normalVar(static_cast<std::uint32_t>(
            _rng->below(_vmap->numNormalVars())));
        // Rule 1 and 2 against other active episodes.
        if (activeWriters(var) > 0 || activeReaders(var) > 0)
            continue;
        // Within the episode: one writer per variable, and never write
        // what any lane already read (lanes are unordered peers).
        if (_epWriterLane[var] >= 0 || _epRead[var])
            continue;
        return var;
    }
    return std::nullopt;
}

std::optional<VarId>
EpisodeGenerator::pickLoadVar(unsigned lane)
{
    for (unsigned attempt = 0; attempt < _cfg.pickAttempts; ++attempt) {
        VarId var = _vmap->normalVar(static_cast<std::uint32_t>(
            _rng->below(_vmap->numNormalVars())));
        // Rule 1 against other active episodes.
        if (activeWriters(var) > 0)
            continue;
        // Within the episode: only the writing lane itself may re-read
        // its own store (program order makes that deterministic).
        std::int32_t writer = _epWriterLane[var];
        if (writer >= 0 && static_cast<unsigned>(writer) != lane)
            continue;
        return var;
    }
    return std::nullopt;
}

void
EpisodeGenerator::generateInto(Episode &episode, std::uint32_t wavefront_id)
{
    episode.beginBuild();
    episode.id = _nextEpisodeId++;
    episode.wavefrontId = wavefront_id;
    episode.syncVar = _vmap->syncVar(static_cast<std::uint32_t>(
        _rng->below(_vmap->numSyncVars())));

    for (unsigned a = 0; a < _cfg.actionsPerEpisode; ++a) {
        episode.addAction(_cfg.lanes);
        for (unsigned lane = 0; lane < _cfg.lanes; ++lane) {
            if (!_rng->pct(_cfg.laneActivePct))
                continue;
            bool is_store = _rng->pct(_cfg.storePct);
            if (is_store) {
                auto var = pickStoreVar();
                if (!var)
                    continue; // conflict space exhausted; skip the slot
                std::uint32_t value = _nextStoreValue++;
                std::uint32_t wi = episode.addWrite(*var, lane, value);
                episode.setStore(a, lane, *var, value, wi);
                _epWriterLane[*var] = static_cast<std::int32_t>(lane);
                _epWriteIdx[*var] = wi;
            } else {
                auto var = pickLoadVar(lane);
                if (!var)
                    continue;
                episode.setLoad(a, lane, *var,
                                _epWriterLane[*var] >= 0
                                    ? _epWriteIdx[*var]
                                    : Episode::kNoWrite);
                if (!_epRead[*var]) {
                    _epRead[*var] = 1;
                    episode.reads.push_back(*var);
                }
            }
        }
    }

    // Publish the episode's footprint so episodes generated while this
    // one is active cannot conflict with it — and clear the per-episode
    // scratch for the next build (touched entries only, so the sweep
    // costs O(footprint), not O(numVars)).
    for (const Episode::WriteEntry &w : episode.writes) {
        ++_activeWriters[w.var];
        _epWriterLane[w.var] = -1;
        _epWriteIdx[w.var] = Episode::kNoWrite;
    }
    for (VarId var : episode.reads) {
        ++_activeReaders[var];
        _epRead[var] = 0;
    }
    ++_activeCount;
}

void
EpisodeGenerator::retire(const Episode &episode)
{
    for (const Episode::WriteEntry &w : episode.writes) {
        assert(_activeWriters[w.var] > 0);
        --_activeWriters[w.var];
    }
    for (VarId var : episode.reads) {
        assert(_activeReaders[var] > 0);
        --_activeReaders[var];
    }
    assert(_activeCount > 0);
    --_activeCount;
}

} // namespace drf
