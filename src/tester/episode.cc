#include "tester/episode.hh"

#include <cassert>

namespace drf
{

EpisodeGenerator::EpisodeGenerator(const VariableMap &vmap,
                                   const EpisodeGenConfig &cfg,
                                   Random &rng)
    : _vmap(&vmap), _cfg(cfg), _rng(&rng),
      _activeReaders(vmap.numVars(), 0),
      _activeWriters(vmap.numVars(), 0)
{
    assert(vmap.numSyncVars() > 0 && vmap.numNormalVars() > 0);
}

std::optional<VarId>
EpisodeGenerator::pickStoreVar(const Episode &episode)
{
    for (unsigned attempt = 0; attempt < _cfg.pickAttempts; ++attempt) {
        VarId var = _vmap->normalVar(static_cast<std::uint32_t>(
            _rng->below(_vmap->numNormalVars())));
        // Rule 1 and 2 against other active episodes.
        if (activeWriters(var) > 0 || activeReaders(var) > 0)
            continue;
        // Within the episode: one writer per variable, and never write
        // what any lane already read (lanes are unordered peers).
        if (episode.writes.count(var) > 0 || episode.reads.count(var) > 0)
            continue;
        return var;
    }
    return std::nullopt;
}

std::optional<VarId>
EpisodeGenerator::pickLoadVar(const Episode &episode, unsigned lane)
{
    for (unsigned attempt = 0; attempt < _cfg.pickAttempts; ++attempt) {
        VarId var = _vmap->normalVar(static_cast<std::uint32_t>(
            _rng->below(_vmap->numNormalVars())));
        // Rule 1 against other active episodes.
        if (activeWriters(var) > 0)
            continue;
        // Within the episode: only the writing lane itself may re-read
        // its own store (program order makes that deterministic).
        auto it = episode.writes.find(var);
        if (it != episode.writes.end() && it->second.lane != lane)
            continue;
        return var;
    }
    return std::nullopt;
}

Episode
EpisodeGenerator::generate(std::uint32_t wavefront_id)
{
    Episode episode;
    episode.id = _nextEpisodeId++;
    episode.wavefrontId = wavefront_id;
    episode.syncVar = _vmap->syncVar(static_cast<std::uint32_t>(
        _rng->below(_vmap->numSyncVars())));

    episode.actions.resize(_cfg.actionsPerEpisode);
    for (auto &action : episode.actions) {
        action.lanes.resize(_cfg.lanes);
        for (unsigned lane = 0; lane < _cfg.lanes; ++lane) {
            if (!_rng->pct(_cfg.laneActivePct))
                continue;
            bool is_store = _rng->pct(_cfg.storePct);
            if (is_store) {
                auto var = pickStoreVar(episode);
                if (!var)
                    continue; // conflict space exhausted; skip the slot
                LaneOp op;
                op.kind = LaneOp::Kind::Store;
                op.var = *var;
                op.storeValue = _nextStoreValue++;
                episode.writes[*var] =
                    Episode::WriteInfo{lane, op.storeValue, 0};
                action.lanes[lane] = op;
            } else {
                auto var = pickLoadVar(episode, lane);
                if (!var)
                    continue;
                LaneOp op;
                op.kind = LaneOp::Kind::Load;
                op.var = *var;
                episode.reads.insert(*var);
                action.lanes[lane] = op;
            }
        }
    }

    // Publish the episode's footprint so episodes generated while this
    // one is active cannot conflict with it.
    for (const auto &[var, info] : episode.writes)
        ++_activeWriters[var];
    for (VarId var : episode.reads)
        ++_activeReaders[var];
    ++_activeCount;

    return episode;
}

void
EpisodeGenerator::retire(const Episode &episode)
{
    for (const auto &[var, info] : episode.writes) {
        assert(_activeWriters[var] > 0);
        --_activeWriters[var];
    }
    for (VarId var : episode.reads) {
        assert(_activeReaders[var] > 0);
        --_activeReaders[var];
    }
    assert(_activeCount > 0);
    --_activeCount;
}

} // namespace drf
