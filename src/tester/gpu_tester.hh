/**
 * @file
 * The autonomous DRF GPU tester (the paper's core contribution).
 *
 * The tester replaces the GPU core model: its wavefronts attach directly
 * to the per-CU L1 caches and drive them with randomly generated,
 * data-race-free episode streams (Section III). Lanes of a wavefront run
 * in lockstep — a wavefront advances to its next vector action only when
 * every lane's current access completed — mirroring SIMT execution
 * without paying for a detailed GPU pipeline model.
 *
 * Checking is fully autonomous (Section III.C):
 *  - every load is compared against the deterministic expected value
 *    (the lane's own earlier write in the episode, or the reference
 *    memory, updated at episode retirement);
 *  - every atomic's returned value must be unique per synchronization
 *    variable (fetch-add of a positive constant only ever grows);
 *  - a watchdog flags any request outstanding longer than the deadlock
 *    threshold (default one million cycles).
 *
 * On failure the tester produces a Table V-style report identifying the
 * last reader and last writer of the offending variable plus the recent
 * transaction history (Section III.D).
 *
 * Record/replay (src/trace/): with GpuTesterConfig::record set, every
 * generated episode is appended to an EpisodeSchedule as it is issued;
 * with GpuTesterConfig::replay set, the tester issues the recorded
 * schedule instead of generating — bit-identically when the schedule is
 * complete, and deterministically for any subsequence, which is what
 * the failure shrinker exploits.
 */

#ifndef DRF_TESTER_GPU_TESTER_HH
#define DRF_TESTER_GPU_TESTER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/scope.hh"
#include "sim/flat_map.hh"
#include "sim/random.hh"
#include "system/apu_system.hh"
#include "tester/episode.hh"
#include "tester/ref_memory.hh"
#include "tester/tester_failure.hh"
#include "tester/variable_map.hh"
#include "trace/schedule.hh"

namespace drf
{

/** Tester configuration (one Table III column). */
struct GpuTesterConfig
{
    unsigned wfsPerCu = 1;       ///< wavefronts per compute unit
    unsigned lanes = 16;         ///< threads per wavefront
    unsigned episodesPerWf = 10; ///< episodes each wavefront executes
    EpisodeGenConfig episodeGen;
    VariableMapConfig variables;

    /**
     * Scoped-synchronization mode, copied into episodeGen (together
     * with wfsPerCu, which the scope discipline needs for the
     * wavefront-to-CU mapping). None = unscoped, bit-identical to
     * pre-scope builds; Scoped = draw scopes + enforce the scoped-DRF
     * rules; Racy = draw scopes without the rules (expected to fail
     * with FailureClass::ScopeViolation).
     */
    ScopeMode scopeMode = ScopeMode::None;

    std::uint64_t seed = 1;

    /**
     * Forward-progress bound: a request outstanding *strictly longer*
     * than this many cycles trips the watchdog (exactly the threshold
     * is still legal; see watchdogExpired in tester_failure.hh).
     */
    Tick deadlockThreshold = 1'000'000;
    Tick checkInterval = 50'000;   ///< watchdog period
    Tick runLimit = 2'000'000'000; ///< absolute simulation bound

    /**
     * Simulation event budget: abort the run (FailureClass::HostTimeout)
     * once this many events executed; 0 = unlimited. A supervision knob
     * (src/campaign/supervisor.hh), not part of a preset's identity —
     * deliberately not serialized into DRFTRC01 trace headers.
     */
    std::uint64_t eventBudget = 0;

    // Trace record/replay hooks (non-owning; see src/trace/). Neither
    // pointer is part of a preset's identity and both default to off.

    /** Append every generated episode here (recording mode). */
    EpisodeSchedule *record = nullptr;

    /**
     * Issue this schedule instead of generating episodes (replay mode).
     * episodesPerWf is ignored; each wavefront runs exactly its recorded
     * episodes, in schedule order. Mutually exclusive with record.
     */
    const EpisodeSchedule *replay = nullptr;

    /**
     * Optional deterministic schedule perturbation: per-episode issue
     * delays applied where the episode would otherwise start. Used by
     * the offline predictive/exploration passes (src/predict/) to steer
     * a replay into a different legal interleaving; like record/replay
     * it is not part of a preset's identity and is never serialized.
     */
    const SchedulePerturbation *perturb = nullptr;
};

/** Outcome of one tester run. */
struct TesterResult
{
    bool passed = false;
    FailureClass failureClass = FailureClass::None;
    std::string report;          ///< failure details (empty on pass)
    Tick ticks = 0;              ///< simulated time consumed
    std::uint64_t events = 0;    ///< simulation events executed
    std::uint64_t episodes = 0;  ///< episodes retired
    std::uint64_t loadsChecked = 0;
    std::uint64_t storesRetired = 0;
    std::uint64_t atomicsChecked = 0;
    double hostSeconds = 0.0;    ///< wall-clock testing time
};

/**
 * Drives one ApuSystem with the DRF random traffic and checks it.
 */
class GpuTester
{
  public:
    /**
     * @param sys System under test (must have at least one CU).
     * @param cfg Tester configuration.
     */
    GpuTester(ApuSystem &sys, const GpuTesterConfig &cfg);

    /** Run to completion (all wavefronts done) or failure. */
    TesterResult run();

    const VariableMap &variables() const { return *_vmap; }
    const RefMemory &refMemory() const { return *_refMem; }

  private:
    /** Wavefront execution phases. */
    enum class Phase
    {
        Acquire,
        Actions,
        Release,
        Done,
    };

    struct Wavefront
    {
        unsigned cu = 0;
        std::uint32_t globalId = 0;
        Phase phase = Phase::Done;
        Episode episode;
        std::size_t actionIdx = 0;
        unsigned pendingResponses = 0;
        std::uint64_t episodesDone = 0;
    };

    /** In-flight request registry entry (for the watchdog). */
    struct Outstanding
    {
        Tick issued;
        MsgType type;
        Addr addr;
        std::uint32_t wf;
        std::uint64_t episode;

        /** Formatted only when a failure is being reported. */
        std::string describe() const;
    };

    /**
     * One completed memory transaction, kept in a fixed ring for the
     * Section III.D event log. Plain data: recording costs no
     * allocation; formatting happens only in a failure report.
     */
    struct OpTrace
    {
        MsgType type;
        Addr addr;
        std::uint32_t thread;
        std::uint32_t wf;
        std::uint64_t episode;
        std::uint64_t value;
        Tick tick;
    };

    std::uint32_t
    threadId(const Wavefront &wf, unsigned lane) const
    {
        return wf.globalId * _cfg.lanes + lane;
    }

    void startEpisode(Wavefront &wf);
    void issueAction(Wavefront &wf);
    void issueAtomic(Wavefront &wf, bool acquire);
    void onCoreResponse(unsigned cu, Packet &pkt);
    void checkLoad(Wavefront &wf, unsigned lane, const Packet &pkt);
    void checkAtomic(Wavefront &wf, const Packet &pkt);
    void retireEpisode(Wavefront &wf);
    void watchdogCheck();

    /**
     * Raise a failure: formats a report and throws TesterFailure, which
     * run() converts into a failed TesterResult. Never aborts the
     * process, so parallel campaign shards are isolated from each other.
     */
    void fail(FailureClass cls, const std::string &headline,
              const std::string &details);

    bool allDone() const;

    /** Episodes this wavefront must complete before it is done. */
    std::uint64_t episodeTarget(const Wavefront &wf) const;

    /** Record an episode issue/retire marker into the system trace. */
    void traceEpisodeMark(bool issue, const Wavefront &wf) const;

    /** Record a sync acquire/release completion (DRFTRC01 v4). */
    void traceSyncMark(bool acquire, const Wavefront &wf) const;

    ApuSystem &_sys;
    GpuTesterConfig _cfg;
    Random _rng;
    std::unique_ptr<VariableMap> _vmap;
    std::unique_ptr<RefMemory> _refMem;
    std::unique_ptr<EpisodeGenerator> _gen;

    /** Record a completed transaction in the recent-history ring. */
    void traceOp(const OpTrace &op);

    /** Format the recent-history ring, oldest first. */
    std::string recentHistory() const;

    std::vector<Wavefront> _wfs;

    /** Replay mode: per-wavefront recorded episodes, schedule order. */
    std::vector<std::vector<const Episode *>> _replayQueues;

    FlatMap<Outstanding> _outstanding;
    PacketId _nextPktId = 1;

    static constexpr std::size_t historyDepth = 48;
    std::vector<OpTrace> _recentOps; ///< ring buffer
    std::size_t _recentHead = 0;

    std::uint64_t _loadsChecked = 0;
    std::uint64_t _atomicsChecked = 0;
    std::uint64_t _episodesRetired = 0;
    bool _running = false;
};

} // namespace drf

#endif // DRF_TESTER_GPU_TESTER_HH
