#include "tester/gpu_tester.hh"

#include <cassert>
#include <chrono>
#include <sstream>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"
#include "tester/tester_failure.hh"
#include "trace/recorder.hh"

namespace drf
{

std::string
GpuTester::Outstanding::describe() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " addr=0x" << std::hex << addr << std::dec
       << " wf=" << wf << " episode=" << episode;
    return os.str();
}

GpuTester::GpuTester(ApuSystem &sys, const GpuTesterConfig &cfg)
    : _sys(sys), _cfg(cfg), _rng(cfg.seed)
{
    assert(sys.numCus() > 0 && "GPU tester needs at least one CU");
    assert(cfg.episodeGen.lanes == cfg.lanes &&
           "episode generator must match the wavefront width");
    assert(!(cfg.record != nullptr && cfg.replay != nullptr) &&
           "record and replay are mutually exclusive");

    // The variable map consumes the same RNG draws in record and replay
    // mode, so a replayed run sees the identical address mapping.
    _vmap = std::make_unique<VariableMap>(cfg.variables, _rng);
    _refMem = std::make_unique<RefMemory>(*_vmap);
    if (cfg.replay == nullptr) {
        _gen = std::make_unique<EpisodeGenerator>(*_vmap, cfg.episodeGen,
                                                  _rng);
    }

    for (unsigned cu = 0; cu < sys.numCus(); ++cu) {
        sys.l1(cu).bindCoreResponse([this, cu](Packet pkt) {
            onCoreResponse(cu, std::move(pkt));
        });
        for (unsigned w = 0; w < cfg.wfsPerCu; ++w) {
            Wavefront wf;
            wf.cu = cu;
            wf.globalId = cu * cfg.wfsPerCu + w;
            _wfs.push_back(std::move(wf));
        }
    }

    if (cfg.replay != nullptr) {
        _replayQueues.resize(_wfs.size());
        for (const Episode &e : cfg.replay->episodes) {
            if (e.wavefrontId < _replayQueues.size())
                _replayQueues[e.wavefrontId].push_back(&e);
        }
    }
}

std::uint64_t
GpuTester::episodeTarget(const Wavefront &wf) const
{
    if (_cfg.replay != nullptr)
        return _replayQueues[wf.globalId].size();
    return _cfg.episodesPerWf;
}

bool
GpuTester::allDone() const
{
    for (const auto &wf : _wfs) {
        if (wf.phase != Phase::Done || wf.episodesDone < episodeTarget(wf))
            return false;
    }
    return true;
}

void
GpuTester::traceEpisodeMark(bool issue, const Wavefront &wf) const
{
    TraceRecorder *trace = _sys.trace();
    if (trace == nullptr)
        return;
    TraceEvent ev;
    ev.tick = _sys.eventq().curTick();
    ev.kind = issue ? TraceEventKind::EpisodeIssue
                    : TraceEventKind::EpisodeRetire;
    ev.a = wf.episode.id;
    ev.b = wf.episode.syncVar;
    ev.src = static_cast<std::int32_t>(wf.cu);
    ev.u32 = wf.globalId;
    trace->record(ev);
}

void
GpuTester::traceOp(const OpTrace &op)
{
    if (_recentOps.size() < historyDepth) {
        _recentOps.push_back(op);
    } else {
        _recentOps[_recentHead] = op;
        _recentHead = (_recentHead + 1) % historyDepth;
    }
}

std::string
GpuTester::recentHistory() const
{
    std::ostringstream os;
    os << "  recent transactions (oldest first):\n";
    for (std::size_t i = 0; i < _recentOps.size(); ++i) {
        const OpTrace &op =
            _recentOps[(_recentHead + i) % _recentOps.size()];
        os << "    " << op.tick << ": " << msgTypeName(op.type)
           << " addr=0x" << std::hex << op.addr << std::dec
           << " thread=" << op.thread << " wf=" << op.wf << " episode="
           << op.episode << " value=" << op.value << "\n";
    }
    return os.str();
}

void
GpuTester::fail(FailureClass cls, const std::string &headline,
                const std::string &details)
{
    std::ostringstream os;
    os << "GPU tester FAILURE at tick " << _sys.eventq().curTick() << ": "
       << headline << "\n" << details << recentHistory();
    throw TesterFailure(os.str(), cls);
}

void
GpuTester::startEpisode(Wavefront &wf)
{
    if (_cfg.replay != nullptr) {
        const auto &queue = _replayQueues[wf.globalId];
        if (wf.episodesDone >= queue.size()) {
            wf.phase = Phase::Done;
            return;
        }
        wf.episode = *queue[wf.episodesDone];
    } else {
        wf.episode = _gen->generate(wf.globalId);
        if (_cfg.record != nullptr)
            _cfg.record->episodes.push_back(wf.episode);
    }
    traceEpisodeMark(true, wf);
    wf.actionIdx = 0;
    wf.pendingResponses = 0;
    wf.phase = Phase::Acquire;
    issueAtomic(wf, true);
}

void
GpuTester::issueAtomic(Wavefront &wf, bool acquire)
{
    // Lane 0 performs the episode's synchronization atomics.
    Packet pkt;
    pkt.type = MsgType::AtomicReq;
    pkt.addr = _vmap->addrOf(wf.episode.syncVar);
    pkt.size = _vmap->varBytes();
    pkt.atomicOperand = 1; // always grows: returned values are unique
    pkt.acquire = acquire;
    pkt.release = !acquire;
    pkt.requestor = threadId(wf, 0);
    pkt.id = _nextPktId++;
    pkt.issueTick = _sys.eventq().curTick();

    _outstanding.emplace(pkt.id,
                         Outstanding{pkt.issueTick, pkt.type, pkt.addr,
                                     wf.globalId, wf.episode.id});

    wf.pendingResponses = 1;
    if (Logger::get().enabled("Tester")) {
        DLOG(_sys.eventq(), "Tester", "gpu.tester",
             (acquire ? "atomic-acquire" : "atomic-release")
                 << " wf=" << wf.globalId << " episode="
                 << wf.episode.id << " var=" << wf.episode.syncVar);
    }
    _sys.l1(wf.cu).coreRequest(std::move(pkt));
}

void
GpuTester::issueAction(Wavefront &wf)
{
    // Skip vector actions in which no lane participates.
    while (wf.actionIdx < wf.episode.actions.size()) {
        const VectorAction &action = wf.episode.actions[wf.actionIdx];
        bool any = false;
        for (const auto &op : action.lanes)
            any = any || op.has_value();
        if (any)
            break;
        ++wf.actionIdx;
    }

    if (wf.actionIdx >= wf.episode.actions.size()) {
        wf.phase = Phase::Release;
        issueAtomic(wf, false);
        return;
    }

    const VectorAction &action = wf.episode.actions[wf.actionIdx];
    wf.pendingResponses = 0;

    for (unsigned lane = 0; lane < action.lanes.size(); ++lane) {
        if (!action.lanes[lane].has_value())
            continue;
        const LaneOp &op = *action.lanes[lane];

        Packet pkt;
        pkt.addr = _vmap->addrOf(op.var);
        pkt.size = _vmap->varBytes();
        pkt.requestor = threadId(wf, lane);
        pkt.id = _nextPktId++;
        pkt.issueTick = _sys.eventq().curTick();

        if (op.kind == LaneOp::Kind::Store) {
            pkt.type = MsgType::StoreReq;
            pkt.setValueLE(op.storeValue, pkt.size);
        } else {
            pkt.type = MsgType::LoadReq;
        }
        _outstanding.emplace(pkt.id,
                             Outstanding{pkt.issueTick, pkt.type,
                                         pkt.addr, wf.globalId,
                                         wf.episode.id});

        ++wf.pendingResponses;
        _sys.l1(wf.cu).coreRequest(std::move(pkt));
    }
    assert(wf.pendingResponses > 0);
}

void
GpuTester::checkLoad(Wavefront &wf, unsigned lane, const Packet &pkt)
{
    // Identify the variable from the address.
    const VectorAction &action = wf.episode.actions[wf.actionIdx];
    assert(action.lanes[lane].has_value());
    const LaneOp &op = *action.lanes[lane];
    assert(op.kind == LaneOp::Kind::Load);
    assert(_vmap->addrOf(op.var) == pkt.addr);

    std::uint64_t got = pkt.valueLE();

    // Expected value: the lane's own earlier write in this episode, or
    // the globally visible (retired) value.
    std::uint64_t expected;
    auto wit = wf.episode.writes.find(op.var);
    if (wit != wf.episode.writes.end()) {
        assert(wit->second.lane == lane &&
               "generation rules allow only same-lane read-after-write");
        expected = wit->second.value;
    } else {
        expected = _refMem->value(op.var);
    }

    AccessRecord reader;
    reader.threadId = threadId(wf, lane);
    reader.threadGroupId = wf.globalId;
    reader.episodeId = wf.episode.id;
    reader.addr = pkt.addr;
    reader.cycle = _sys.eventq().curTick();
    reader.value = got;

    if (got != expected) {
        std::ostringstream os;
        os << "read-write inconsistency on var " << op.var << " (addr=0x"
           << std::hex << pkt.addr << std::dec << "): loaded " << got
           << ", expected " << expected << "\n";
        os << "  Last Reader: " << reader.describe() << "\n";
        const auto &writer = _refMem->lastWriter(op.var);
        os << "  Last Writer: "
           << (writer ? writer->describe() : std::string("<none>"))
           << "\n";
        fail(FailureClass::ValueMismatch, "load value mismatch",
             os.str());
    }

    _refMem->noteRead(op.var, reader);
    ++_loadsChecked;
}

void
GpuTester::checkAtomic(Wavefront &wf, const Packet &pkt)
{
    AccessRecord record;
    record.threadId = threadId(wf, 0);
    record.threadGroupId = wf.globalId;
    record.episodeId = wf.episode.id;
    record.addr = pkt.addr;
    record.cycle = _sys.eventq().curTick();
    record.value = pkt.atomicResult;

    auto violation = _refMem->noteAtomicReturn(wf.episode.syncVar, record);
    if (violation) {
        std::ostringstream os;
        os << "duplicate atomic return value " << pkt.atomicResult
           << " on sync var " << wf.episode.syncVar << " (addr=0x"
           << std::hex << pkt.addr << std::dec << ")\n";
        os << "  First:  " << violation->first.describe() << "\n";
        os << "  Second: " << violation->second.describe() << "\n";
        fail(FailureClass::AtomicViolation, "atomic lost-update",
             os.str());
    }
    ++_atomicsChecked;
}

void
GpuTester::retireEpisode(Wavefront &wf)
{
    // The release completed: the episode's writes become globally
    // visible and enter the reference memory.
    for (const auto &[var, info] : wf.episode.writes) {
        AccessRecord record;
        record.threadId = threadId(wf, info.lane);
        record.threadGroupId = wf.globalId;
        record.episodeId = wf.episode.id;
        record.addr = _vmap->addrOf(var);
        record.cycle = info.completedAt;
        record.value = info.value;
        _refMem->applyWrite(var, record);
    }
    if (_cfg.replay == nullptr)
        _gen->retire(wf.episode);
    ++_episodesRetired;
    ++wf.episodesDone;
    traceEpisodeMark(false, wf);

    if (wf.episodesDone < episodeTarget(wf)) {
        startEpisode(wf);
    } else {
        wf.phase = Phase::Done;
    }
}

void
GpuTester::onCoreResponse(unsigned cu, Packet pkt)
{
    _outstanding.erase(pkt.id);

    std::uint32_t tid = pkt.requestor;
    std::uint32_t wf_id = tid / _cfg.lanes;
    unsigned lane = tid % _cfg.lanes;
    Wavefront &wf = _wfs.at(wf_id);
    assert(wf.cu == cu);

    traceOp(OpTrace{pkt.type, pkt.addr, tid, wf_id, wf.episode.id,
                    pkt.type == MsgType::AtomicResp
                        ? pkt.atomicResult
                        : pkt.valueLE(),
                    _sys.eventq().curTick()});

    switch (pkt.type) {
      case MsgType::LoadResp:
        assert(wf.phase == Phase::Actions);
        checkLoad(wf, lane, pkt);
        break;
      case MsgType::StoreAck: {
        assert(wf.phase == Phase::Actions);
        const LaneOp &op = *wf.episode.actions[wf.actionIdx].lanes[lane];
        wf.episode.writes[op.var].completedAt = _sys.eventq().curTick();
        break;
      }
      case MsgType::AtomicResp:
        assert(wf.phase == Phase::Acquire || wf.phase == Phase::Release);
        checkAtomic(wf, pkt);
        break;
      default:
        fail(FailureClass::Other, "unexpected core response",
             pkt.describe());
    }

    assert(wf.pendingResponses > 0);
    if (--wf.pendingResponses > 0)
        return;

    // Lockstep: the whole wavefront finished its current step.
    switch (wf.phase) {
      case Phase::Acquire:
        wf.phase = Phase::Actions;
        issueAction(wf);
        break;
      case Phase::Actions:
        ++wf.actionIdx;
        issueAction(wf);
        break;
      case Phase::Release:
        retireEpisode(wf);
        break;
      case Phase::Done:
        assert(false && "response for a finished wavefront");
        break;
    }
}

void
GpuTester::watchdogCheck()
{
    Tick now = _sys.eventq().curTick();
    for (const auto &[id, req] : _outstanding) {
        if (watchdogExpired(now, req.issued, _cfg.deadlockThreshold)) {
            std::ostringstream os;
            os << "request outstanding for " << (now - req.issued)
               << " cycles (threshold " << _cfg.deadlockThreshold
               << "): " << req.describe() << " issued at " << req.issued
               << "\n";
            fail(FailureClass::Deadlock,
                 "potential deadlock (no forward progress)", os.str());
        }
    }
    if (!allDone()) {
        _sys.eventq().scheduleAfter(_cfg.checkInterval,
                                    [this] { watchdogCheck(); });
    }
}

TesterResult
GpuTester::run()
{
    assert(!_running && "tester already ran");
    _running = true;

    TesterResult result;
    auto t0 = std::chrono::steady_clock::now();

    try {
        for (auto &wf : _wfs)
            startEpisode(wf);
        _sys.eventq().scheduleAfter(_cfg.checkInterval,
                                    [this] { watchdogCheck(); });
        bool drained =
            _sys.eventq().run(_cfg.runLimit, _cfg.eventBudget);
        if (allDone()) {
            result.passed = true;
        } else if (_cfg.eventBudget != 0 &&
                   _sys.eventq().eventsExecuted() >= _cfg.eventBudget) {
            // Supervisor budget, not a protocol verdict: the shard kept
            // executing events without finishing inside its allowance.
            result.passed = false;
            result.failureClass = FailureClass::HostTimeout;
            result.report = "simulation event budget (" +
                            std::to_string(_cfg.eventBudget) +
                            " events) exhausted before completion";
        } else {
            result.passed = false;
            result.failureClass = FailureClass::LostProgress;
            result.report = drained
                ? "simulation drained before all wavefronts finished "
                  "(lost event / dropped message)"
                : "run limit reached before completion";
        }
    } catch (const TesterFailure &failure) {
        result.passed = false;
        result.failureClass = failure.failureClass();
        result.report = failure.what();
    } catch (const ProtocolError &error) {
        // A coherence controller hit an undefined transition. Convert it
        // into a structured failure so a campaign shard can report it
        // without killing sibling shards in the same process.
        result.passed = false;
        result.failureClass = FailureClass::ProtocolError;
        result.report = std::string(error.what()) + "\n" +
                        recentHistory();
    }

    auto t1 = std::chrono::steady_clock::now();
    result.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.ticks = _sys.eventq().curTick();
    result.events = _sys.eventq().eventsExecuted();
    result.episodes = _episodesRetired;
    result.loadsChecked = _loadsChecked;
    result.storesRetired = _refMem->writesRetired();
    result.atomicsChecked = _atomicsChecked;
    return result;
}

} // namespace drf
