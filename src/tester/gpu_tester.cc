#include "tester/gpu_tester.hh"

#include <cassert>
#include <chrono>
#include <sstream>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"
#include "tester/tester_failure.hh"
#include "trace/recorder.hh"

namespace drf
{

std::string
GpuTester::Outstanding::describe() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " addr=0x" << std::hex << addr << std::dec
       << " wf=" << wf << " episode=" << episode;
    return os.str();
}

GpuTester::GpuTester(ApuSystem &sys, const GpuTesterConfig &cfg)
    : _sys(sys), _cfg(cfg), _rng(cfg.seed)
{
    assert(sys.numCus() > 0 && "GPU tester needs at least one CU");
    assert(cfg.episodeGen.lanes == cfg.lanes &&
           "episode generator must match the wavefront width");
    assert(!(cfg.record != nullptr && cfg.replay != nullptr) &&
           "record and replay are mutually exclusive");

    // The scope discipline lives in the generator; hand it the scope
    // mode and the wavefront-to-CU divisor.
    _cfg.episodeGen.scopeMode = _cfg.scopeMode;
    _cfg.episodeGen.wfsPerCu = _cfg.wfsPerCu;

    // The variable map consumes the same RNG draws in record and replay
    // mode, so a replayed run sees the identical address mapping.
    _vmap = std::make_unique<VariableMap>(cfg.variables, _rng);
    _refMem = std::make_unique<RefMemory>(*_vmap);
    if (cfg.replay == nullptr) {
        _gen = std::make_unique<EpisodeGenerator>(*_vmap, _cfg.episodeGen,
                                                  _rng);
    }

    for (unsigned cu = 0; cu < sys.numCus(); ++cu) {
        sys.l1(cu).bindCoreResponse([this, cu](Packet &&pkt) {
            onCoreResponse(cu, pkt);
        });
        for (unsigned w = 0; w < cfg.wfsPerCu; ++w) {
            Wavefront wf;
            wf.cu = cu;
            wf.globalId = cu * cfg.wfsPerCu + w;
            _wfs.push_back(std::move(wf));
        }
    }

    if (cfg.replay != nullptr) {
        _replayQueues.resize(_wfs.size());
        for (const Episode &e : cfg.replay->episodes) {
            if (e.wavefrontId < _replayQueues.size())
                _replayQueues[e.wavefrontId].push_back(&e);
        }
    }

    // Size the in-flight registry for the steady state (every lane of
    // every wavefront plus an atomic each) so it never rehashes.
    _outstanding.reserve(_wfs.size() * (cfg.lanes + 1) * 2);
    _refMem->reserveAtomics(_wfs.size() * cfg.episodesPerWf * 2 + 2);
}

std::uint64_t
GpuTester::episodeTarget(const Wavefront &wf) const
{
    if (_cfg.replay != nullptr)
        return _replayQueues[wf.globalId].size();
    return _cfg.episodesPerWf;
}

bool
GpuTester::allDone() const
{
    for (const auto &wf : _wfs) {
        if (wf.phase != Phase::Done || wf.episodesDone < episodeTarget(wf))
            return false;
    }
    return true;
}

void
GpuTester::traceEpisodeMark(bool issue, const Wavefront &wf) const
{
    TraceRecorder *trace = _sys.trace();
    if (trace == nullptr)
        return;
    TraceEvent ev;
    ev.tick = _sys.eventq().curTick();
    ev.kind = issue ? TraceEventKind::EpisodeIssue
                    : TraceEventKind::EpisodeRetire;
    ev.a = wf.episode.id;
    ev.b = wf.episode.syncVar;
    ev.src = static_cast<std::int32_t>(wf.cu);
    ev.u32 = wf.globalId;
    trace->record(ev);
}

void
GpuTester::traceSyncMark(bool acquire, const Wavefront &wf) const
{
    TraceRecorder *trace = _sys.trace();
    if (trace == nullptr)
        return;
    TraceEvent ev;
    ev.tick = _sys.eventq().curTick();
    ev.kind = acquire ? TraceEventKind::SyncAcquire
                      : TraceEventKind::SyncRelease;
    ev.a = wf.episode.id;
    ev.b = wf.episode.syncVar;
    ev.src = static_cast<std::int32_t>(wf.cu);
    ev.u8 = static_cast<std::uint8_t>(wf.episode.scope);
    ev.u32 = wf.globalId;
    trace->record(ev);
}

void
GpuTester::traceOp(const OpTrace &op)
{
    if (_recentOps.size() < historyDepth) {
        _recentOps.push_back(op);
    } else {
        _recentOps[_recentHead] = op;
        _recentHead = (_recentHead + 1) % historyDepth;
    }
}

std::string
GpuTester::recentHistory() const
{
    std::ostringstream os;
    os << "  recent transactions (oldest first):\n";
    for (std::size_t i = 0; i < _recentOps.size(); ++i) {
        const OpTrace &op =
            _recentOps[(_recentHead + i) % _recentOps.size()];
        os << "    " << op.tick << ": " << msgTypeName(op.type)
           << " addr=0x" << std::hex << op.addr << std::dec
           << " thread=" << op.thread << " wf=" << op.wf << " episode="
           << op.episode << " value=" << op.value << "\n";
    }
    return os.str();
}

void
GpuTester::fail(FailureClass cls, const std::string &headline,
                const std::string &details)
{
    std::ostringstream os;
    os << "GPU tester FAILURE at tick " << _sys.eventq().curTick() << ": "
       << headline << "\n" << details << recentHistory();
    throw TesterFailure(os.str(), cls);
}

void
GpuTester::startEpisode(Wavefront &wf)
{
    if (_cfg.replay != nullptr) {
        const auto &queue = _replayQueues[wf.globalId];
        if (wf.episodesDone >= queue.size()) {
            wf.phase = Phase::Done;
            return;
        }
        wf.episode = *queue[wf.episodesDone];
    } else {
        _gen->generateInto(wf.episode, wf.globalId);
        if (_cfg.record != nullptr)
            _cfg.record->episodes.push_back(wf.episode);
    }
    traceEpisodeMark(true, wf);
    wf.actionIdx = 0;
    wf.pendingResponses = 0;
    wf.phase = Phase::Acquire;

    // Perturbed replay: hold the acquire back by the configured delay.
    // Marking pendingResponses first keeps the wavefront visibly busy
    // (allDone stays false) while the deferred issue sits in the queue.
    const Tick delay = _cfg.perturb == nullptr
                           ? 0
                           : _cfg.perturb->delayFor(wf.episode.id);
    if (delay > 0) {
        wf.pendingResponses = 1;
        const std::uint32_t id = wf.globalId;
        _sys.eventq().scheduleAfter(delay, [this, id] {
            issueAtomic(_wfs[id], true);
        });
        return;
    }
    issueAtomic(wf, true);
}

void
GpuTester::issueAtomic(Wavefront &wf, bool acquire)
{
    // Lane 0 performs the episode's synchronization atomics.
    Packet pkt;
    pkt.type = MsgType::AtomicReq;
    pkt.addr = _vmap->addrOf(wf.episode.syncVar);
    pkt.size = _vmap->varBytes();
    pkt.atomicOperand = 1; // always grows: returned values are unique
    pkt.acquire = acquire;
    pkt.release = !acquire;
    pkt.scope = wf.episode.scope;
    pkt.requestor = threadId(wf, 0);
    pkt.id = _nextPktId++;
    pkt.issueTick = _sys.eventq().curTick();

    _outstanding.emplace(pkt.id,
                         Outstanding{pkt.issueTick, pkt.type, pkt.addr,
                                     wf.globalId, wf.episode.id});

    wf.pendingResponses = 1;
    if (Logger::get().enabled("Tester")) {
        DLOG(_sys.eventq(), "Tester", "gpu.tester",
             (acquire ? "atomic-acquire" : "atomic-release")
                 << " wf=" << wf.globalId << " episode="
                 << wf.episode.id << " var=" << wf.episode.syncVar);
    }
    _sys.l1(wf.cu).coreRequest(std::move(pkt));
}

void
GpuTester::issueAction(Wavefront &wf)
{
    // Skip vector actions in which no lane participates.
    const std::uint32_t num_actions = wf.episode.numActions();
    while (wf.actionIdx < num_actions &&
           !wf.episode.actionHasActiveLane(
               static_cast<std::uint32_t>(wf.actionIdx))) {
        ++wf.actionIdx;
    }

    if (wf.actionIdx >= num_actions) {
        wf.phase = Phase::Release;
        issueAtomic(wf, false);
        return;
    }

    const std::uint32_t a = static_cast<std::uint32_t>(wf.actionIdx);
    const std::uint32_t lanes = wf.episode.laneCount(a);
    wf.pendingResponses = 0;

    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        if (!wf.episode.laneActive(a, lane))
            continue;

        Packet pkt;
        pkt.addr = _vmap->addrOf(wf.episode.laneVar(a, lane));
        pkt.size = _vmap->varBytes();
        pkt.requestor = threadId(wf, lane);
        pkt.id = _nextPktId++;
        pkt.issueTick = _sys.eventq().curTick();

        if (wf.episode.laneIsStore(a, lane)) {
            pkt.type = MsgType::StoreReq;
            pkt.setValueLE(wf.episode.laneValue(a, lane), pkt.size);
        } else {
            pkt.type = MsgType::LoadReq;
        }
        _outstanding.emplace(pkt.id,
                             Outstanding{pkt.issueTick, pkt.type,
                                         pkt.addr, wf.globalId,
                                         wf.episode.id});

        ++wf.pendingResponses;
        _sys.l1(wf.cu).coreRequest(std::move(pkt));
    }
    assert(wf.pendingResponses > 0);
}

void
GpuTester::checkLoad(Wavefront &wf, unsigned lane, const Packet &pkt)
{
    // Identify the variable from the address.
    const std::uint32_t a = static_cast<std::uint32_t>(wf.actionIdx);
    assert(wf.episode.laneActive(a, lane));
    assert(!wf.episode.laneIsStore(a, lane));
    const VarId var = wf.episode.laneVar(a, lane);
    assert(_vmap->addrOf(var) == pkt.addr);

    std::uint64_t got = pkt.valueLE();

    // Expected value: the lane's own earlier write in this episode
    // (pre-linked by the generator as a write index, so no lookup), or
    // the globally visible (retired) value.
    std::uint64_t expected;
    const std::uint32_t wi = wf.episode.laneWriteIdx(a, lane);
    if (wi != Episode::kNoWrite) {
        assert(wf.episode.writes[wi].info.lane == lane &&
               "generation rules allow only same-lane read-after-write");
        expected = wf.episode.writes[wi].info.value;
    } else {
        expected = _refMem->value(var);
    }

    AccessRecord reader;
    reader.threadId = threadId(wf, lane);
    reader.threadGroupId = wf.globalId;
    reader.episodeId = wf.episode.id;
    reader.addr = pkt.addr;
    reader.cycle = _sys.eventq().curTick();
    reader.value = got;

    if (got != expected) {
        std::ostringstream os;
        os << "read-write inconsistency on var " << var << " (addr=0x"
           << std::hex << pkt.addr << std::dec << "): loaded " << got
           << ", expected " << expected << "\n";
        os << "  Last Reader: " << reader.describe() << "\n";
        const auto writer = _refMem->lastWriter(var);
        os << "  Last Writer: "
           << (writer ? writer->describe() : std::string("<none>"))
           << "\n";
        // With scoped synchronization the base generation rules are
        // still race-free, so a mismatch against another CU's write is
        // attributable to scope: stale data a CTA-scoped acquire did not
        // invalidate, or an undrained CTA-scoped release. Same-CU
        // mismatches remain plain ValueMismatch (the L1 is coherent
        // within its own CU regardless of scope).
        FailureClass cls = FailureClass::ValueMismatch;
        if (_cfg.scopeMode != ScopeMode::None && writer &&
            writer->threadGroupId / _cfg.wfsPerCu != wf.cu) {
            os << "  reader episode scope: "
               << scopeName(wf.episode.scope) << " (cu " << wf.cu
               << "), writer cu "
               << (writer->threadGroupId / _cfg.wfsPerCu) << "\n";
            cls = FailureClass::ScopeViolation;
        }
        fail(cls,
             cls == FailureClass::ScopeViolation
                 ? "scoped-synchronization violation"
                 : "load value mismatch",
             os.str());
    }

    _refMem->noteRead(var, reader);
    ++_loadsChecked;
}

void
GpuTester::checkAtomic(Wavefront &wf, const Packet &pkt)
{
    AccessRecord record;
    record.threadId = threadId(wf, 0);
    record.threadGroupId = wf.globalId;
    record.episodeId = wf.episode.id;
    record.addr = pkt.addr;
    record.cycle = _sys.eventq().curTick();
    record.value = pkt.atomicResult;

    auto violation = _refMem->noteAtomicReturn(wf.episode.syncVar, record);
    if (violation) {
        std::ostringstream os;
        os << "duplicate atomic return value " << pkt.atomicResult
           << " on sync var " << wf.episode.syncVar << " (addr=0x"
           << std::hex << pkt.addr << std::dec << ")\n";
        os << "  First:  " << violation->first.describe() << "\n";
        os << "  Second: " << violation->second.describe() << "\n";
        fail(FailureClass::AtomicViolation, "atomic lost-update",
             os.str());
    }
    ++_atomicsChecked;
}

void
GpuTester::retireEpisode(Wavefront &wf)
{
    // The release completed: the episode's writes become globally
    // visible and enter the reference memory.
    for (const Episode::WriteEntry &w : wf.episode.writes) {
        AccessRecord record;
        record.threadId = threadId(wf, w.info.lane);
        record.threadGroupId = wf.globalId;
        record.episodeId = wf.episode.id;
        record.addr = _vmap->addrOf(w.var);
        record.cycle = w.info.completedAt;
        record.value = w.info.value;
        _refMem->applyWrite(w.var, record);
    }
    if (_cfg.replay == nullptr)
        _gen->retire(wf.episode);
    ++_episodesRetired;
    ++wf.episodesDone;
    traceEpisodeMark(false, wf);

    if (wf.episodesDone < episodeTarget(wf)) {
        startEpisode(wf);
    } else {
        wf.phase = Phase::Done;
    }
}

void
GpuTester::onCoreResponse(unsigned cu, Packet &pkt)
{
    _outstanding.erase(pkt.id);

    std::uint32_t tid = pkt.requestor;
    std::uint32_t wf_id = tid / _cfg.lanes;
    unsigned lane = tid % _cfg.lanes;
    Wavefront &wf = _wfs.at(wf_id);
    assert(wf.cu == cu);

    traceOp(OpTrace{pkt.type, pkt.addr, tid, wf_id, wf.episode.id,
                    pkt.type == MsgType::AtomicResp
                        ? pkt.atomicResult
                        : pkt.valueLE(),
                    _sys.eventq().curTick()});

    switch (pkt.type) {
      case MsgType::LoadResp:
        assert(wf.phase == Phase::Actions);
        checkLoad(wf, lane, pkt);
        break;
      case MsgType::StoreAck: {
        assert(wf.phase == Phase::Actions);
        const std::uint32_t wi = wf.episode.laneWriteIdx(
            static_cast<std::uint32_t>(wf.actionIdx), lane);
        assert(wi != Episode::kNoWrite);
        wf.episode.writes[wi].info.completedAt = _sys.eventq().curTick();
        break;
      }
      case MsgType::AtomicResp:
        assert(wf.phase == Phase::Acquire || wf.phase == Phase::Release);
        checkAtomic(wf, pkt);
        traceSyncMark(wf.phase == Phase::Acquire, wf);
        break;
      default:
        fail(FailureClass::Other, "unexpected core response",
             pkt.describe());
    }

    assert(wf.pendingResponses > 0);
    if (--wf.pendingResponses > 0)
        return;

    // Lockstep: the whole wavefront finished its current step.
    switch (wf.phase) {
      case Phase::Acquire:
        wf.phase = Phase::Actions;
        issueAction(wf);
        break;
      case Phase::Actions:
        ++wf.actionIdx;
        issueAction(wf);
        break;
      case Phase::Release:
        retireEpisode(wf);
        break;
      case Phase::Done:
        assert(false && "response for a finished wavefront");
        break;
    }
}

void
GpuTester::watchdogCheck()
{
    Tick now = _sys.eventq().curTick();
    // Report the expired request with the smallest packet id — the same
    // entry the old id-sorted std::map iteration failed on first — so
    // the deadlock report stays independent of table layout.
    const Outstanding *worst = nullptr;
    PacketId worst_id = 0;
    _outstanding.forEach([&](std::uint64_t id, const Outstanding &req) {
        if (watchdogExpired(now, req.issued, _cfg.deadlockThreshold) &&
            (worst == nullptr || id < worst_id)) {
            worst = &req;
            worst_id = id;
        }
    });
    if (worst != nullptr) {
        std::ostringstream os;
        os << "request outstanding for " << (now - worst->issued)
           << " cycles (threshold " << _cfg.deadlockThreshold
           << "): " << worst->describe() << " issued at " << worst->issued
           << "\n";
        fail(FailureClass::Deadlock,
             "potential deadlock (no forward progress)", os.str());
    }
    if (!allDone()) {
        _sys.eventq().scheduleAfter(_cfg.checkInterval,
                                    [this] { watchdogCheck(); });
    }
}

TesterResult
GpuTester::run()
{
    assert(!_running && "tester already ran");
    _running = true;

    TesterResult result;
    auto t0 = std::chrono::steady_clock::now();

    try {
        for (auto &wf : _wfs)
            startEpisode(wf);
        _sys.eventq().scheduleAfter(_cfg.checkInterval,
                                    [this] { watchdogCheck(); });
        bool drained =
            _sys.eventq().run(_cfg.runLimit, _cfg.eventBudget);
        if (allDone()) {
            result.passed = true;
        } else if (_cfg.eventBudget != 0 &&
                   _sys.eventq().eventsExecuted() >= _cfg.eventBudget) {
            // Supervisor budget, not a protocol verdict: the shard kept
            // executing events without finishing inside its allowance.
            result.passed = false;
            result.failureClass = FailureClass::HostTimeout;
            result.report = "simulation event budget (" +
                            std::to_string(_cfg.eventBudget) +
                            " events) exhausted before completion";
        } else {
            result.passed = false;
            result.failureClass = FailureClass::LostProgress;
            result.report = drained
                ? "simulation drained before all wavefronts finished "
                  "(lost event / dropped message)"
                : "run limit reached before completion";
        }
    } catch (const TesterFailure &failure) {
        result.passed = false;
        result.failureClass = failure.failureClass();
        result.report = failure.what();
    } catch (const ProtocolError &error) {
        // A coherence controller hit an undefined transition. Convert it
        // into a structured failure so a campaign shard can report it
        // without killing sibling shards in the same process.
        result.passed = false;
        result.failureClass = FailureClass::ProtocolError;
        result.report = std::string(error.what()) + "\n" +
                        recentHistory();
    }

    auto t1 = std::chrono::steady_clock::now();
    result.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.ticks = _sys.eventq().curTick();
    result.events = _sys.eventq().eventsExecuted();
    result.episodes = _episodesRetired;
    result.loadsChecked = _loadsChecked;
    result.storesRetired = _refMem->writesRetired();
    result.atomicsChecked = _atomicsChecked;
    return result;
}

} // namespace drf
