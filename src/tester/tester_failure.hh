/**
 * @file
 * Structured tester-failure signalling.
 *
 * GpuTester::fail / CpuTester::fail raise a TesterFailure carrying the
 * formatted Table V-style report; the run() boundary of each tester
 * catches it (together with ProtocolError from the simulated coherence
 * controllers) and converts it into a failed TesterResult. Nothing below
 * run() aborts the process, which is what allows a campaign shard to
 * fail without tearing down sibling shards running in the same process
 * (see src/campaign/).
 *
 * Every failure also carries a FailureClass — the coarse bug taxonomy
 * the paper's checkers distinguish. The class is what the trace
 * shrinker minimizes against: a shrunk repro counts only if it still
 * triggers the *same class* of failure as the original run.
 */

#ifndef DRF_TESTER_TESTER_FAILURE_HH
#define DRF_TESTER_TESTER_FAILURE_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace drf
{

/**
 * Coarse classification of a detected failure.
 *
 * The first group is the paper's protocol-bug taxonomy: deterministic
 * verdicts about the simulated system, bit-reproducible from the
 * shard's (configuration, seed). The Host* group is the campaign
 * supervisor's triage of the *testing process itself* (see
 * src/campaign/supervisor.hh): it describes what happened to the host
 * process running a shard, not the protocol under test, and is not
 * reproducible from the seed alone.
 */
enum class FailureClass
{
    None,            ///< the run passed
    ValueMismatch,   ///< load returned a value other than expected
    AtomicViolation, ///< duplicate atomic return value (lost update)
    Deadlock,        ///< watchdog: request past the progress threshold
    LostProgress,    ///< queue drained / run limit hit before completion
    ProtocolError,   ///< controller hit an undefined transition
    Other,           ///< anything else (unexpected response, ...)

    // Host-level triage (campaign supervisor).
    HostCrash,   ///< shard process/thread died: segfault, uncaught
                 ///< throw, sanitizer abort, nonzero child exit
    HostTimeout, ///< shard reaped: wall-clock deadline or simulation
                 ///< event budget exhausted (livelock/hang)
    ResourceExhausted, ///< transient host failure (fork/OOM/IO);
                       ///< the supervisor retries these

    // Appended after the host group (not grouped with the other protocol
    // verdicts) so the serialized numeric values in existing traces and
    // journals stay stable.
    ScopeViolation, ///< CTA-scoped synchronization observed across CTAs

    WorkerDivergence, ///< fleet quorum: two workers returned different
                      ///< outcomes for the same shard — one of them is
                      ///< lying (bad RAM, miscompiled binary, wire
                      ///< corruption past the checksum); a host-side
                      ///< integrity verdict, not a protocol bug
};

/** Printable failure-class name. */
inline const char *
failureClassName(FailureClass c)
{
    switch (c) {
      case FailureClass::None: return "None";
      case FailureClass::ValueMismatch: return "ValueMismatch";
      case FailureClass::AtomicViolation: return "AtomicViolation";
      case FailureClass::Deadlock: return "Deadlock";
      case FailureClass::LostProgress: return "LostProgress";
      case FailureClass::ProtocolError: return "ProtocolError";
      case FailureClass::Other: return "Other";
      case FailureClass::HostCrash: return "HostCrash";
      case FailureClass::HostTimeout: return "HostTimeout";
      case FailureClass::ResourceExhausted: return "ResourceExhausted";
      case FailureClass::ScopeViolation: return "ScopeViolation";
      case FailureClass::WorkerDivergence: return "WorkerDivergence";
    }
    return "?";
}

/** Number of FailureClass values (for serialization range checks). */
inline constexpr std::uint32_t failureClassCount = 12;

/**
 * Inverse of failureClassName, for journal / trace-header round trips.
 * Returns nullopt for unknown names instead of arming a bogus class.
 */
inline std::optional<FailureClass>
parseFailureClass(const std::string &name)
{
    for (std::uint32_t i = 0; i < failureClassCount; ++i) {
        FailureClass c = static_cast<FailureClass>(i);
        if (name == failureClassName(c))
            return c;
    }
    return std::nullopt;
}

/**
 * True for the host-level (environment) classes — the supervisor's
 * triage domain, as opposed to protocol verdicts about the simulated
 * system. Host failures are never fed to the trace shrinker and only
 * ResourceExhausted is retriable.
 */
constexpr bool
isHostFailureClass(FailureClass c)
{
    return c == FailureClass::HostCrash ||
           c == FailureClass::HostTimeout ||
           c == FailureClass::ResourceExhausted;
}

/**
 * Forward-progress watchdog boundary predicate shared by GpuTester and
 * CpuTester: a request issued at @p issued violates the bound at
 * @p now when it has been outstanding *strictly longer* than
 * @p threshold ticks. Outstanding for exactly @p threshold ticks is
 * still legal; one tick more trips the watchdog.
 */
constexpr bool
watchdogExpired(std::uint64_t now, std::uint64_t issued,
                std::uint64_t threshold)
{
    return now - issued > threshold;
}

/** Control-flow exception carrying a tester failure report. */
class TesterFailure : public std::runtime_error
{
  public:
    explicit TesterFailure(std::string report,
                           FailureClass cls = FailureClass::Other)
        : std::runtime_error(std::move(report)), _class(cls)
    {}

    FailureClass failureClass() const { return _class; }

  private:
    FailureClass _class;
};

} // namespace drf

#endif // DRF_TESTER_TESTER_FAILURE_HH
