/**
 * @file
 * Structured tester-failure signalling.
 *
 * GpuTester::fail / CpuTester::fail raise a TesterFailure carrying the
 * formatted Table V-style report; the run() boundary of each tester
 * catches it (together with ProtocolError from the simulated coherence
 * controllers) and converts it into a failed TesterResult. Nothing below
 * run() aborts the process, which is what allows a campaign shard to
 * fail without tearing down sibling shards running in the same process
 * (see src/campaign/).
 */

#ifndef DRF_TESTER_TESTER_FAILURE_HH
#define DRF_TESTER_TESTER_FAILURE_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace drf
{

/** Control-flow exception carrying a tester failure report. */
class TesterFailure : public std::runtime_error
{
  public:
    explicit TesterFailure(std::string report)
        : std::runtime_error(std::move(report))
    {}
};

} // namespace drf

#endif // DRF_TESTER_TESTER_FAILURE_HH
