/**
 * @file
 * Structured tester-failure signalling.
 *
 * GpuTester::fail / CpuTester::fail raise a TesterFailure carrying the
 * formatted Table V-style report; the run() boundary of each tester
 * catches it (together with ProtocolError from the simulated coherence
 * controllers) and converts it into a failed TesterResult. Nothing below
 * run() aborts the process, which is what allows a campaign shard to
 * fail without tearing down sibling shards running in the same process
 * (see src/campaign/).
 *
 * Every failure also carries a FailureClass — the coarse bug taxonomy
 * the paper's checkers distinguish. The class is what the trace
 * shrinker minimizes against: a shrunk repro counts only if it still
 * triggers the *same class* of failure as the original run.
 */

#ifndef DRF_TESTER_TESTER_FAILURE_HH
#define DRF_TESTER_TESTER_FAILURE_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace drf
{

/** Coarse classification of a detected failure. */
enum class FailureClass
{
    None,            ///< the run passed
    ValueMismatch,   ///< load returned a value other than expected
    AtomicViolation, ///< duplicate atomic return value (lost update)
    Deadlock,        ///< watchdog: request past the progress threshold
    LostProgress,    ///< queue drained / run limit hit before completion
    ProtocolError,   ///< controller hit an undefined transition
    Other,           ///< anything else (unexpected response, ...)
};

/** Printable failure-class name. */
inline const char *
failureClassName(FailureClass c)
{
    switch (c) {
      case FailureClass::None: return "None";
      case FailureClass::ValueMismatch: return "ValueMismatch";
      case FailureClass::AtomicViolation: return "AtomicViolation";
      case FailureClass::Deadlock: return "Deadlock";
      case FailureClass::LostProgress: return "LostProgress";
      case FailureClass::ProtocolError: return "ProtocolError";
      case FailureClass::Other: return "Other";
    }
    return "?";
}

/** Control-flow exception carrying a tester failure report. */
class TesterFailure : public std::runtime_error
{
  public:
    explicit TesterFailure(std::string report,
                           FailureClass cls = FailureClass::Other)
        : std::runtime_error(std::move(report)), _class(cls)
    {}

    FailureClass failureClass() const { return _class; }

  private:
    FailureClass _class;
};

} // namespace drf

#endif // DRF_TESTER_TESTER_FAILURE_HH
