/**
 * @file
 * Random mapping between tester variables and physical addresses
 * (Fig. 2 of the paper).
 *
 * The tester works on two kinds of shared variables: synchronization
 * (atomic) variables and normal (non-synchronization) variables, obeying
 * the DRF discipline that loads/stores touch only normal variables and
 * atomics touch only synchronization variables. Variables are scattered
 * uniformly at random over a configurable byte range, so several
 * variables — sync and normal alike — co-locate in one cache line. That
 * false sharing is deliberate: it is a major source of coherence bugs and
 * the reason the mapping is randomized rather than linear.
 */

#ifndef DRF_TESTER_VARIABLE_MAP_HH
#define DRF_TESTER_VARIABLE_MAP_HH

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace drf
{

/** Index of a tester variable. Sync variables come first. */
using VarId = std::uint32_t;

/** Configuration of the variable/address mapping. */
struct VariableMapConfig
{
    std::uint32_t numSyncVars = 10;
    std::uint32_t numNormalVars = 4096;
    std::uint64_t addrRangeBytes = 1 << 20; ///< mapped address range
    unsigned lineBytes = 64;
    unsigned varBytes = 4; ///< every variable is one 32-bit word
};

/**
 * The randomized variable-to-address mapping.
 */
class VariableMap
{
  public:
    VariableMap(const VariableMapConfig &cfg, Random &rng);

    std::uint32_t numSyncVars() const { return _cfg.numSyncVars; }
    std::uint32_t numNormalVars() const { return _cfg.numNormalVars; }
    std::uint32_t numVars() const
    {
        return _cfg.numSyncVars + _cfg.numNormalVars;
    }
    unsigned varBytes() const { return _cfg.varBytes; }

    /** VarId of the i-th synchronization variable. */
    VarId syncVar(std::uint32_t i) const { return i; }

    /** VarId of the i-th normal variable. */
    VarId
    normalVar(std::uint32_t i) const
    {
        return _cfg.numSyncVars + i;
    }

    bool isSync(VarId var) const { return var < _cfg.numSyncVars; }

    /** Byte address the variable is mapped to. */
    Addr
    addrOf(VarId var) const
    {
        assert(var < _addrs.size());
        return _addrs[var];
    }

    /** Cache line the variable lives in. */
    Addr
    lineOf(VarId var) const
    {
        return lineAlign(addrOf(var), _cfg.lineBytes);
    }

    /**
     * Variables co-located in the given cache line. The index is built
     * once at construction; the reference stays valid for the lifetime
     * of the map.
     */
    const std::vector<VarId> &varsInLine(Addr line_addr) const;

    /**
     * Fraction of variables that share their cache line with at least
     * one other variable — a measure of induced false sharing.
     */
    double falseSharingFraction() const;

  private:
    VariableMapConfig _cfg;
    std::vector<Addr> _addrs; ///< varId -> address
    /** Line base -> co-located variables, precomputed at construction. */
    std::unordered_map<Addr, std::vector<VarId>> _byLine;
};

} // namespace drf

#endif // DRF_TESTER_VARIABLE_MAP_HH
