/**
 * @file
 * Table III configuration presets.
 *
 * The GPU tester runs are the 24 permutations of:
 *   cache size        { small, large, mixed }   (3)
 * x actions/episode   { 100, 200 }              (2)
 * x episodes/WF       { 10, 100 }               (2)
 * x atomic locations  { 10 (small), 100 (large) } (2)
 *
 * matching "Test 0, Test 1, ..., Test 23" of the paper. Absolute sizes
 * are scaled to this repository's simulator (documented in
 * EXPERIMENTS.md): the paper's 1M regular locations and 16 GB ranges
 * exercise the same code paths at ~4K locations over a 1 MB range, while
 * keeping each of the 24 runs in the seconds range.
 */

#ifndef DRF_TESTER_CONFIGS_HH
#define DRF_TESTER_CONFIGS_HH

#include <optional>
#include <string>
#include <vector>

#include "system/apu_system.hh"
#include "tester/cpu_tester.hh"
#include "tester/gpu_tester.hh"

namespace drf
{

/** Cache-size classes of Table III. */
enum class CacheSizeClass
{
    Small, ///< 256 B 2-way L1, 1 KB 2-way L2
    Large, ///< 256 KB 16-way L1, 1 MB 16-way L2
    Mixed, ///< 256 B L1, 1 MB L2
};

const char *cacheSizeClassName(CacheSizeClass c);

/** Inverse of cacheSizeClassName (CLI flags, fleet wire payloads). */
std::optional<CacheSizeClass>
parseCacheSizeClass(const std::string &name);

/** One fully specified GPU tester run. */
struct GpuTestPreset
{
    std::string name;
    CacheSizeClass cacheClass;
    ApuSystemConfig system;
    GpuTesterConfig tester;
};

/** Build the Table III system config for a cache-size class. */
ApuSystemConfig makeGpuSystemConfig(CacheSizeClass cache_class,
                                    unsigned num_cus = 8);

/** Default tester knobs shared by all presets. */
GpuTesterConfig makeGpuTesterConfig(unsigned actions_per_episode,
                                    unsigned episodes_per_wf,
                                    unsigned atomic_locs,
                                    std::uint64_t seed);

/** The 24 Table III permutations, "Test 0" ... "Test 23". */
std::vector<GpuTestPreset> makeGpuTestSweep(std::uint64_t base_seed = 1);

/** One fully specified CPU tester run. */
struct CpuTestPreset
{
    std::string name;
    ApuSystemConfig system;
    CpuTesterConfig tester;
};

/**
 * The CPU tester sweep of Table III: 2/4/8 CPU core pairs, small/large
 * corepair caches, 100/10K/100K load test lengths.
 */
std::vector<CpuTestPreset> makeCpuTestSweep(std::uint64_t base_seed = 1);

} // namespace drf

#endif // DRF_TESTER_CONFIGS_HH
