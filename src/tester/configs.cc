#include "tester/configs.hh"

namespace drf
{

const char *
cacheSizeClassName(CacheSizeClass c)
{
    switch (c) {
      case CacheSizeClass::Small: return "small";
      case CacheSizeClass::Large: return "large";
      case CacheSizeClass::Mixed: return "mixed";
    }
    return "?";
}

std::optional<CacheSizeClass>
parseCacheSizeClass(const std::string &name)
{
    for (CacheSizeClass c : {CacheSizeClass::Small, CacheSizeClass::Large,
                             CacheSizeClass::Mixed}) {
        if (name == cacheSizeClassName(c))
            return c;
    }
    return std::nullopt;
}

ApuSystemConfig
makeGpuSystemConfig(CacheSizeClass cache_class, unsigned num_cus)
{
    ApuSystemConfig cfg;
    cfg.numCus = num_cus;
    cfg.numCpuCaches = 0;

    switch (cache_class) {
      case CacheSizeClass::Small:
        cfg.l1.sizeBytes = 256;
        cfg.l1.assoc = 2;
        cfg.l2.sizeBytes = 1024;
        cfg.l2.assoc = 2;
        break;
      case CacheSizeClass::Large:
        cfg.l1.sizeBytes = 256 * 1024;
        cfg.l1.assoc = 16;
        cfg.l2.sizeBytes = 1024 * 1024;
        cfg.l2.assoc = 16;
        break;
      case CacheSizeClass::Mixed:
        cfg.l1.sizeBytes = 256;
        cfg.l1.assoc = 2;
        cfg.l2.sizeBytes = 1024 * 1024;
        cfg.l2.assoc = 16;
        break;
    }
    return cfg;
}

GpuTesterConfig
makeGpuTesterConfig(unsigned actions_per_episode, unsigned episodes_per_wf,
                    unsigned atomic_locs, std::uint64_t seed)
{
    GpuTesterConfig cfg;
    cfg.wfsPerCu = 2;
    cfg.lanes = 16;
    cfg.episodesPerWf = episodes_per_wf;
    cfg.episodeGen.actionsPerEpisode = actions_per_episode;
    cfg.episodeGen.lanes = cfg.lanes;
    cfg.variables.numSyncVars = atomic_locs;
    cfg.variables.numNormalVars = 4096;
    cfg.variables.addrRangeBytes = 1 << 20;
    cfg.seed = seed;
    return cfg;
}

std::vector<GpuTestPreset>
makeGpuTestSweep(std::uint64_t base_seed)
{
    std::vector<GpuTestPreset> presets;
    const CacheSizeClass cache_classes[] = {
        CacheSizeClass::Small, CacheSizeClass::Large,
        CacheSizeClass::Mixed};
    const unsigned actions[] = {100, 200};
    const unsigned episodes[] = {10, 100};
    const unsigned atomic_locs[] = {10, 100};

    unsigned idx = 0;
    for (auto cache_class : cache_classes) {
        for (unsigned a : actions) {
            for (unsigned e : episodes) {
                for (unsigned locs : atomic_locs) {
                    GpuTestPreset preset;
                    preset.name = "Test " + std::to_string(idx);
                    preset.cacheClass = cache_class;
                    preset.system = makeGpuSystemConfig(cache_class);
                    preset.tester = makeGpuTesterConfig(
                        a, e, locs, base_seed + idx);
                    presets.push_back(std::move(preset));
                    ++idx;
                }
            }
        }
    }
    return presets;
}

std::vector<CpuTestPreset>
makeCpuTestSweep(std::uint64_t base_seed)
{
    std::vector<CpuTestPreset> presets;
    const unsigned cache_counts[] = {1, 2, 4}; // core pairs: 2/4/8 CPUs
    const std::uint64_t cache_sizes[] = {512, 256 * 1024};
    const std::uint64_t lengths[] = {100, 10'000, 100'000};

    unsigned idx = 0;
    for (unsigned caches : cache_counts) {
        for (std::uint64_t size : cache_sizes) {
            for (std::uint64_t loads : lengths) {
                CpuTestPreset preset;
                preset.name = "CpuTest " + std::to_string(idx);
                preset.system.numCus = 0;
                preset.system.numCpuCaches = caches;
                preset.system.cpu.sizeBytes = size;
                preset.system.cpu.assoc = 2;
                preset.tester.targetLoads = loads;
                preset.tester.addrRangeBytes = 2048;
                preset.tester.seed = base_seed + idx;
                presets.push_back(std::move(preset));
                ++idx;
            }
        }
    }
    return presets;
}

} // namespace drf
