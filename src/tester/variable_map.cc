#include "tester/variable_map.hh"

#include <cassert>
#include <unordered_set>

namespace drf
{

VariableMap::VariableMap(const VariableMapConfig &cfg, Random &rng)
    : _cfg(cfg)
{
    const std::uint64_t slots = cfg.addrRangeBytes / cfg.varBytes;
    assert(slots >= numVars() &&
           "address range too small for the variable count");

    std::unordered_set<std::uint64_t> used;
    _addrs.reserve(numVars());
    for (std::uint32_t v = 0; v < numVars(); ++v) {
        std::uint64_t slot;
        do {
            slot = rng.below(slots);
        } while (!used.insert(slot).second);
        Addr addr = slot * cfg.varBytes;
        _addrs.push_back(addr);
        _byLine[lineAlign(addr, cfg.lineBytes)].push_back(v);
    }
}

const std::vector<VarId> &
VariableMap::varsInLine(Addr line_addr) const
{
    static const std::vector<VarId> empty;
    auto it = _byLine.find(line_addr);
    return it == _byLine.end() ? empty : it->second;
}

double
VariableMap::falseSharingFraction() const
{
    std::uint64_t shared = 0;
    for (std::uint32_t v = 0; v < numVars(); ++v) {
        if (varsInLine(lineOf(v)).size() > 1)
            ++shared;
    }
    return numVars() == 0
        ? 0.0 : static_cast<double>(shared) / numVars();
}

} // namespace drf
