#include "tester/scenarios.hh"

#include <functional>
#include <optional>
#include <utility>

#include "mem/msg.hh"
#include "system/apu_system.hh"

namespace drf
{

namespace
{

/** Issue one core request and run the queue until it drains. */
std::optional<Packet>
step(ApuSystem &sys, std::optional<Packet> &resp_slot,
     const std::function<void(Packet)> &issue, Packet pkt)
{
    resp_slot.reset();
    issue(std::move(pkt));
    sys.eventq().run();
    return resp_slot;
}

} // namespace

ProbeScenarioResult
runDropGpuProbeScenario(FaultKind fault)
{
    ApuSystemConfig cfg;
    cfg.numCus = 1;
    cfg.numCpuCaches = 1;
    cfg.fault = fault;
    cfg.faultTriggerPct = 100;

    ApuSystem sys(cfg);

    // The data line the CPU and GPU contend on, and a separate line
    // carrying the acquire atomic (an acquire flash-invalidates the L1
    // but must not touch the data line's L2 copy).
    constexpr Addr data_addr = 0x1000;
    constexpr Addr sync_addr = 0x2000;
    constexpr unsigned var_bytes = 4;

    std::optional<Packet> gpu_resp;
    std::optional<Packet> cpu_resp;
    sys.l1(0).bindCoreResponse(
        [&gpu_resp](Packet pkt) { gpu_resp = std::move(pkt); });
    sys.cpuCache(0).bindCoreResponse(
        [&cpu_resp](Packet pkt) { cpu_resp = std::move(pkt); });

    auto gpu_issue = [&sys](Packet pkt) {
        sys.l1(0).coreRequest(std::move(pkt));
    };
    auto cpu_issue = [&sys](Packet pkt) {
        sys.cpuCache(0).coreRequest(std::move(pkt));
    };

    PacketId next_id = 1;
    auto make = [&next_id](MsgType type, Addr addr) {
        Packet pkt;
        pkt.type = type;
        pkt.addr = addr;
        pkt.size = var_bytes;
        pkt.requestor = 0;
        pkt.id = next_id++;
        return pkt;
    };

    ProbeScenarioResult result;
    result.cpuStoreValue = 0xA5A5A5A5;

    // 1. GPU load: fills the line into L1 and L2 and registers the L2
    //    as a GPU sharer at the directory.
    auto r1 = step(sys, gpu_resp, gpu_issue,
                   make(MsgType::LoadReq, data_addr));
    if (!r1 || r1->type != MsgType::LoadResp)
        return result;

    // 2. CPU store: takes exclusive ownership. The directory's probe
    //    toward the GPU L2 is the packet DropGpuProbe swallows.
    Packet store = make(MsgType::StoreReq, data_addr);
    store.setValueLE(result.cpuStoreValue, var_bytes);
    auto r2 = step(sys, cpu_resp, cpu_issue, std::move(store));
    if (!r2 || r2->type != MsgType::StoreAck)
        return result;

    // 3. GPU acquire atomic on the sync line: flash-invalidates the
    //    L1 so the reload below must go to the L2.
    Packet acq = make(MsgType::AtomicReq, sync_addr);
    acq.atomicOperand = 1;
    acq.acquire = true;
    auto r3 = step(sys, gpu_resp, gpu_issue, std::move(acq));
    if (!r3 || r3->type != MsgType::AtomicResp)
        return result;

    // 4. GPU reload of the data line: a correct protocol invalidated
    //    the L2 copy in step 2 and fetches the CPU's value; with the
    //    probe dropped the stale L2 copy services the miss.
    auto r4 = step(sys, gpu_resp, gpu_issue,
                   make(MsgType::LoadReq, data_addr));
    if (!r4 || r4->type != MsgType::LoadResp)
        return result;

    result.completed = true;
    result.gpuReloadValue = r4->valueLE();
    result.staleObserved = result.gpuReloadValue != result.cpuStoreValue;
    return result;
}

} // namespace drf
