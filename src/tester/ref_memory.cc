#include "tester/ref_memory.hh"

#include <algorithm>
#include <sstream>

namespace drf
{

std::string
AccessRecord::describe() const
{
    std::ostringstream os;
    os << "thread=" << threadId << " group=" << threadGroupId
       << " episode=" << episodeId << " addr=0x" << std::hex << addr
       << std::dec << " cycle=" << cycle << " value=" << value;
    return os.str();
}

RefMemory::RefMemory(const VariableMap &vmap)
    : _vmap(&vmap), _values(vmap.numVars(), 0),
      _writerValid(vmap.numVars(), 0), _readerValid(vmap.numVars(), 0),
      _writerRec(vmap.numVars()), _readerRec(vmap.numVars()),
      _atomicPlanes(vmap.numSyncVars()),
      _atomicCount(vmap.numSyncVars(), 0)
{
}

void
RefMemory::applyWrite(VarId var, const AccessRecord &record)
{
    _values[var] = static_cast<std::uint32_t>(record.value);
    _writerRec[var] = record;
    _writerValid[var] = 1;
    ++_writesRetired;
}

void
RefMemory::noteRead(VarId var, const AccessRecord &record)
{
    _readerRec[var] = record;
    _readerValid[var] = 1;
    ++_readsChecked;
}

void
RefMemory::reserveAtomics(std::uint64_t per_var)
{
    per_var = std::min(per_var, denseAtomicLimit);
    for (AtomicPlane &plane : _atomicPlanes) {
        plane.seen.resize((per_var + 63) / 64, 0);
        plane.rec.resize(per_var);
    }
}

std::optional<AtomicViolation>
RefMemory::noteAtomicReturn(VarId var, const AccessRecord &record)
{
    if (var >= _atomicPlanes.size()) {
        _atomicPlanes.resize(var + 1);
        _atomicCount.resize(var + 1, 0);
    }

    if (record.value >= denseAtomicLimit) {
        // Only reachable when the protocol under test corrupted the
        // atomic; stay exact without growing the dense planes.
        auto [it, inserted] = _atomicOverflow.emplace(
            std::make_pair(var, record.value), record);
        if (!inserted)
            return AtomicViolation{it->second, record};
        ++_atomicCount[var];
        return std::nullopt;
    }

    AtomicPlane &plane = _atomicPlanes[var];
    const std::uint64_t v = record.value;
    const std::size_t word = static_cast<std::size_t>(v / 64);
    const std::uint64_t bit = std::uint64_t{1} << (v % 64);
    if (word >= plane.seen.size()) {
        plane.seen.resize(word + 1, 0);
        plane.rec.resize((word + 1) * 64);
    }
    if (plane.seen[word] & bit)
        return AtomicViolation{plane.rec[v], record};
    plane.seen[word] |= bit;
    plane.rec[v] = record;
    ++_atomicCount[var];
    return std::nullopt;
}

} // namespace drf
