#include "tester/ref_memory.hh"

#include <sstream>

namespace drf
{

std::string
AccessRecord::describe() const
{
    std::ostringstream os;
    os << "thread=" << threadId << " group=" << threadGroupId
       << " episode=" << episodeId << " addr=0x" << std::hex << addr
       << std::dec << " cycle=" << cycle << " value=" << value;
    return os.str();
}

RefMemory::RefMemory(const VariableMap &vmap)
    : _vmap(&vmap), _values(vmap.numVars(), 0),
      _lastWriter(vmap.numVars()), _lastReader(vmap.numVars()),
      _atomicSeen(vmap.numSyncVars())
{
}

void
RefMemory::applyWrite(VarId var, const AccessRecord &record)
{
    _values[var] = static_cast<std::uint32_t>(record.value);
    _lastWriter[var] = record;
    ++_writesRetired;
}

void
RefMemory::noteRead(VarId var, const AccessRecord &record)
{
    _lastReader[var] = record;
    ++_readsChecked;
}

std::optional<AtomicViolation>
RefMemory::noteAtomicReturn(VarId var, const AccessRecord &record)
{
    if (var >= _atomicSeen.size())
        _atomicSeen.resize(var + 1);
    auto &seen = _atomicSeen[var];
    auto [it, inserted] = seen.emplace(record.value, record);
    if (!inserted)
        return AtomicViolation{it->second, record};
    return std::nullopt;
}

} // namespace drf
