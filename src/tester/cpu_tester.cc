#include "tester/cpu_tester.hh"

#include <cassert>
#include <chrono>
#include <sstream>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"
#include "tester/tester_failure.hh"

namespace drf
{

CpuTester::CpuTester(ApuSystem &sys, const CpuTesterConfig &cfg)
    : _sys(sys), _cfg(cfg), _rng(cfg.seed),
      _expected(cfg.addrRangeBytes, 0),
      _busyAddrs(cfg.addrRangeBytes, kIdle)
{
    assert(sys.numCpuCaches() > 0 && "CPU tester needs CPU caches");
    for (unsigned i = 0; i < sys.numCpuCaches(); ++i) {
        sys.cpuCache(i).bindCoreResponse([this, i](Packet &&pkt) {
            onCoreResponse(i, pkt);
        });
        for (unsigned c = 0; c < cfg.coresPerCache; ++c) {
            Core core;
            core.cacheIdx = i;
            core.coreId = i * cfg.coresPerCache + c;
            _cores.push_back(core);
        }
    }
}

void
CpuTester::fail(FailureClass cls, const std::string &headline,
                const std::string &details)
{
    std::ostringstream os;
    os << "CPU tester FAILURE at tick " << _sys.eventq().curTick() << ": "
       << headline << "\n" << details;
    throw TesterFailure(os.str(), cls);
}

void
CpuTester::issueNext(Core &core)
{
    if (done())
        return;

    // Find a location no other core is currently transacting on. The
    // per-location serialization is what lets a strong model predict
    // every value; different bytes of one line stay concurrently hot.
    Addr addr = 0;
    bool found = false;
    for (unsigned attempt = 0; attempt < 16; ++attempt) {
        addr = _cfg.addrBase + _rng.below(_cfg.addrRangeBytes);
        if (_busyAddrs[slotOf(addr)] == kIdle) {
            found = true;
            break;
        }
    }
    if (!found) {
        // Everything this core rolled is busy; retry shortly.
        _sys.eventq().scheduleAfter(
            10, [this, &core] { issueNext(core); });
        return;
    }

    core.busy = true;
    core.curAddr = addr;
    core.curIsStore = _rng.pct(_cfg.storePct);
    core.issuedAt = _sys.eventq().curTick();
    _busyAddrs[slotOf(addr)] = core.coreId;

    Packet pkt;
    pkt.addr = addr;
    pkt.size = 1;
    pkt.requestor = core.coreId;
    pkt.id = (static_cast<PacketId>(core.coreId) << 48) |
             (core.issuedAt & 0xffffffffffffULL);
    pkt.issueTick = core.issuedAt;

    if (core.curIsStore) {
        std::uint8_t next =
            static_cast<std::uint8_t>(_expected[slotOf(addr)] + 1);
        core.curValue = next;
        pkt.type = MsgType::StoreReq;
        pkt.setValueLE(next, 1);
    } else {
        pkt.type = MsgType::LoadReq;
    }
    _sys.cpuCache(core.cacheIdx).coreRequest(std::move(pkt));
}

void
CpuTester::onCoreResponse(unsigned cache_idx, Packet &pkt)
{
    std::uint32_t core_id = pkt.requestor;
    Core &core = _cores.at(core_id);
    assert(core.cacheIdx == cache_idx);
    assert(core.busy && core.curAddr == pkt.addr);

    if (pkt.type == MsgType::LoadResp) {
        assert(pkt.dataLen >= 1);
        std::uint8_t got = pkt.data[0];
        std::uint8_t expected = _expected[slotOf(pkt.addr)];
        if (got != expected) {
            std::ostringstream os;
            os << "CPU load mismatch at addr 0x" << std::hex << pkt.addr
               << std::dec << ": loaded " << unsigned(got)
               << ", expected " << unsigned(expected) << " (core "
               << core_id << ")\n";
            fail(FailureClass::ValueMismatch, "CPU load value mismatch",
                 os.str());
        }
        ++_loadsChecked;
    } else if (pkt.type == MsgType::StoreAck) {
        _expected[slotOf(pkt.addr)] = core.curValue;
        ++_storesDone;
    } else {
        fail(FailureClass::Other, "unexpected CPU core response",
             pkt.describe());
    }

    core.busy = false;
    _busyAddrs[slotOf(pkt.addr)] = kIdle;
    issueNext(core);
}

void
CpuTester::watchdogCheck()
{
    Tick now = _sys.eventq().curTick();
    for (const auto &core : _cores) {
        if (core.busy &&
            watchdogExpired(now, core.issuedAt, _cfg.deadlockThreshold)) {
            std::ostringstream os;
            os << "core " << core.coreId << " request to addr 0x"
               << std::hex << core.curAddr << std::dec
               << " outstanding for " << (now - core.issuedAt)
               << " cycles\n";
            fail(FailureClass::Deadlock, "potential CPU-side deadlock",
                 os.str());
        }
    }
    if (!done()) {
        _sys.eventq().scheduleAfter(_cfg.checkInterval,
                                    [this] { watchdogCheck(); });
    }
}

TesterResult
CpuTester::run()
{
    assert(!_running && "tester already ran");
    _running = true;

    TesterResult result;
    auto t0 = std::chrono::steady_clock::now();

    try {
        for (auto &core : _cores)
            issueNext(core);
        _sys.eventq().scheduleAfter(_cfg.checkInterval,
                                    [this] { watchdogCheck(); });
        bool drained =
            _sys.eventq().run(_cfg.runLimit, _cfg.eventBudget);
        if (done()) {
            result.passed = true;
        } else if (_cfg.eventBudget != 0 &&
                   _sys.eventq().eventsExecuted() >= _cfg.eventBudget) {
            result.passed = false;
            result.failureClass = FailureClass::HostTimeout;
            result.report = "simulation event budget (" +
                            std::to_string(_cfg.eventBudget) +
                            " events) exhausted before completion";
        } else {
            result.passed = false;
            result.failureClass = FailureClass::LostProgress;
            result.report = drained
                ? "simulation drained before the target load count"
                : "run limit reached before completion";
        }
    } catch (const TesterFailure &failure) {
        result.passed = false;
        result.failureClass = failure.failureClass();
        result.report = failure.what();
    } catch (const ProtocolError &error) {
        result.passed = false;
        result.failureClass = FailureClass::ProtocolError;
        result.report = error.what();
    }

    auto t1 = std::chrono::steady_clock::now();
    result.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    result.ticks = _sys.eventq().curTick();
    result.events = _sys.eventq().eventsExecuted();
    result.loadsChecked = _loadsChecked;
    result.storesRetired = _storesDone;
    return result;
}

} // namespace drf
