/**
 * @file
 * Random CPU coherence tester, after Wood et al. and gem5's Ruby random
 * tester (Sections II.B and IV.C).
 *
 * The CPU protocol provides write atomicity and per-location ordering,
 * so — unlike the GPU tester — the CPU tester can rely on issue order to
 * know every expected value: each byte-sized location carries a counter;
 * at most one transaction is in flight per location at a time; a load
 * must return exactly the last completed store's value. Different cores
 * hammer different bytes of the same cache line concurrently, which is
 * what produces the false-sharing races that stress the protocol.
 */

#ifndef DRF_TESTER_CPU_TESTER_HH
#define DRF_TESTER_CPU_TESTER_HH

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "system/apu_system.hh"
#include "tester/gpu_tester.hh" // TesterResult

namespace drf
{

/** CPU tester configuration (one Table III column). */
struct CpuTesterConfig
{
    unsigned coresPerCache = 2;      ///< logical cores per core pair
    std::uint64_t targetLoads = 10'000; ///< test length ("100..1M loads")
    std::uint64_t addrRangeBytes = 1024; ///< small range => contention
    Addr addrBase = 0;               ///< start of the tested range
    unsigned storePct = 50;
    std::uint64_t seed = 1;

    /** Forward-progress bound; strictly-longer-than semantics (see
     *  watchdogExpired in tester_failure.hh). */
    Tick deadlockThreshold = 1'000'000;
    Tick checkInterval = 50'000;
    Tick runLimit = 2'000'000'000;

    /** Simulation event budget (HostTimeout when exhausted); 0 = off.
     *  Supervision knob, same semantics as GpuTesterConfig's. */
    std::uint64_t eventBudget = 0;
};

/**
 * Drives the CPU core-pair caches of an ApuSystem and checks values
 * under the strong (SC-per-location) CPU model.
 */
class CpuTester
{
  public:
    CpuTester(ApuSystem &sys, const CpuTesterConfig &cfg);

    /** Run until targetLoads checked loads completed, or failure. */
    TesterResult run();

  private:
    struct Core
    {
        unsigned cacheIdx = 0;
        std::uint32_t coreId = 0;
        bool busy = false;
        Addr curAddr = 0;
        bool curIsStore = false;
        std::uint8_t curValue = 0;
        Tick issuedAt = 0;
    };

    void issueNext(Core &core);
    void onCoreResponse(unsigned cache_idx, Packet &pkt);
    void watchdogCheck();

    /** Throws TesterFailure; run() converts it into a failed result. */
    void fail(FailureClass cls, const std::string &headline,
              const std::string &details);
    bool done() const { return _loadsChecked >= _cfg.targetLoads; }

    ApuSystem &_sys;
    CpuTesterConfig _cfg;
    Random _rng;

    /** Sentinel for _busyAddrs slots with no transaction in flight. */
    static constexpr std::uint32_t kIdle = ~std::uint32_t{0};

    /** Index of @p addr in the flat per-byte tables. */
    std::size_t
    slotOf(Addr addr) const
    {
        assert(addr >= _cfg.addrBase &&
               addr - _cfg.addrBase < _cfg.addrRangeBytes);
        return static_cast<std::size_t>(addr - _cfg.addrBase);
    }

    std::vector<Core> _cores;
    // The tested range is small and dense (addrRangeBytes, default 1 KiB)
    // and these tables sit on the per-load hot path, so they are flat
    // vectors indexed by addr - addrBase rather than ordered maps.
    std::vector<std::uint8_t> _expected;   ///< last stored value (0 init)
    std::vector<std::uint32_t> _busyAddrs; ///< owning core, or kIdle

    std::uint64_t _loadsChecked = 0;
    std::uint64_t _storesDone = 0;
    bool _running = false;
};

} // namespace drf

#endif // DRF_TESTER_CPU_TESTER_HH
