/**
 * @file
 * Directed protocol scenarios for faults the random tester cannot
 * reliably expose.
 *
 * DropGpuProbe needs mixed CPU+GPU traffic on the same line in a
 * specific order: the GPU caches a line, the CPU takes exclusive
 * ownership (the dropped probe leaves a stale copy in the GPU L2), and
 * the GPU then re-reads the line after an acquire. The random GPU
 * tester never generates CPU traffic, so this file scripts the exact
 * sequence against a tiny one-CU one-CPU system. Both tests/test_fault
 * and tools/shrink_repro's fuzz sweep drive it.
 */

#ifndef DRF_TESTER_SCENARIOS_HH
#define DRF_TESTER_SCENARIOS_HH

#include <cstdint>

#include "proto/fault.hh"

namespace drf
{

/** Outcome of the directed DropGpuProbe scenario. */
struct ProbeScenarioResult
{
    /** The GPU's final load returned the pre-store (stale) value. */
    bool staleObserved = false;
    /** Value the CPU stored between the two GPU reads. */
    std::uint64_t cpuStoreValue = 0;
    /** Value the GPU's final (post-acquire) load returned. */
    std::uint64_t gpuReloadValue = 0;
    /** Every scripted step completed (responses arrived). */
    bool completed = false;
};

/**
 * Run the directed CPU-writes/GPU-rereads sequence with @p fault armed
 * (trigger percentage 100). With FaultKind::DropGpuProbe the directory
 * forgets the GPU L2 holds the line, the stale copy survives the CPU's
 * exclusive store, and the GPU's post-acquire reload observes it
 * (staleObserved = true). With FaultKind::None the probe invalidates
 * the L2 copy and the reload sees the CPU's value.
 */
ProbeScenarioResult runDropGpuProbeScenario(FaultKind fault);

} // namespace drf

#endif // DRF_TESTER_SCENARIOS_HH
