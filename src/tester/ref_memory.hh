/**
 * @file
 * The tester's reference memory: the autonomously maintained "expected
 * global view" of every shared variable (Section III.C).
 *
 * Under release consistency a value written inside an episode becomes
 * globally visible when the episode retires (its release completes), so
 * the reference memory is updated exactly at retirement. Combined with
 * the generator's data-race-freedom guarantees, the legal value of every
 * load is deterministic: either the loading episode's own earlier write
 * (same lane) or the reference value.
 *
 * The reference memory also keeps the per-variable last-reader and
 * last-writer records the failure reports are built from (Table V), and
 * the per-synchronization-variable atomic-return history used to detect
 * lost atomic updates (Section V, bug 2).
 */

#ifndef DRF_TESTER_REF_MEMORY_HH
#define DRF_TESTER_REF_MEMORY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"
#include "tester/variable_map.hh"

namespace drf
{

/** Who touched a variable, and when: one line of a Table V report. */
struct AccessRecord
{
    std::uint32_t threadId = 0;
    std::uint32_t threadGroupId = 0; ///< wavefront ("thread group")
    std::uint64_t episodeId = 0;
    Addr addr = 0;
    Tick cycle = 0;
    std::uint64_t value = 0;

    /** Format one column of a Table V-style report. */
    std::string describe() const;
};

/** A detected duplicate atomic return value. */
struct AtomicViolation
{
    AccessRecord first;
    AccessRecord second;
};

/**
 * Expected values plus access history for all tester variables.
 */
class RefMemory
{
  public:
    explicit RefMemory(const VariableMap &vmap);

    /** Current globally visible value of a variable. */
    std::uint32_t value(VarId var) const { return _values[var]; }

    /**
     * Apply one retired write: the episode's release completed, so
     * @p record.value becomes the globally visible value.
     */
    void applyWrite(VarId var, const AccessRecord &record);

    /** Note a checked load (keeps the last-reader record). */
    void noteRead(VarId var, const AccessRecord &record);

    /** Last writer of a variable, if any write retired yet. */
    const std::optional<AccessRecord> &
    lastWriter(VarId var) const
    {
        return _lastWriter[var];
    }

    /** Last reader of a variable, if any. */
    const std::optional<AccessRecord> &
    lastReader(VarId var) const
    {
        return _lastReader[var];
    }

    /**
     * Record an atomic fetch-add's returned (old) value on a sync
     * variable and check it for lost-update symptoms: every returned
     * value must be unique because the values only grow.
     *
     * @return the violation if @p record.value was already returned by an
     *         earlier atomic on this variable.
     */
    std::optional<AtomicViolation> noteAtomicReturn(VarId var,
                                                    const AccessRecord &
                                                        record);

    /** Number of atomics performed on a sync variable so far. */
    std::uint64_t
    atomicCount(VarId var) const
    {
        return var < _atomicSeen.size() ? _atomicSeen[var].size() : 0;
    }

    /** Total writes retired (for stats). */
    std::uint64_t writesRetired() const { return _writesRetired; }

    /** Total reads noted (for stats). */
    std::uint64_t readsChecked() const { return _readsChecked; }

  private:
    const VariableMap *_vmap;
    std::vector<std::uint32_t> _values;
    std::vector<std::optional<AccessRecord>> _lastWriter;
    std::vector<std::optional<AccessRecord>> _lastReader;

    /**
     * Per-variable returned-value history, indexed directly by VarId
     * (sync variables are the low ids) so the hot duplicate check hashes
     * only the returned value, not the variable id.
     */
    std::vector<std::unordered_map<std::uint64_t, AccessRecord>>
        _atomicSeen;

    std::uint64_t _writesRetired = 0;
    std::uint64_t _readsChecked = 0;
};

} // namespace drf

#endif // DRF_TESTER_REF_MEMORY_HH
