/**
 * @file
 * The tester's reference memory: the autonomously maintained "expected
 * global view" of every shared variable (Section III.C).
 *
 * Under release consistency a value written inside an episode becomes
 * globally visible when the episode retires (its release completes), so
 * the reference memory is updated exactly at retirement. Combined with
 * the generator's data-race-freedom guarantees, the legal value of every
 * load is deterministic: either the loading episode's own earlier write
 * (same lane) or the reference value.
 *
 * The reference memory also keeps the per-variable last-reader and
 * last-writer records the failure reports are built from (Table V), and
 * the per-synchronization-variable atomic-return history used to detect
 * lost atomic updates (Section V, bug 2).
 *
 * Storage is plane-split for the hot checking loops (DESIGN.md §10):
 * expected values live in a dense uint32 plane and validity in byte
 * flags, while the AccessRecord detail planes are plain arrays written
 * by POD copy and read only when a failure report is being built. The
 * atomic-return history exploits that fetch-add(+1) returns each value
 * exactly once: the duplicate check is a bit test in a per-variable
 * bitmask indexed by the returned value, not a hash lookup, with the
 * full records in a parallel cold plane. Returned values too large for
 * a sane dense plane (only possible when the protocol under test is
 * corrupting the atomic) fall back to an exact ordered-map path.
 */

#ifndef DRF_TESTER_REF_MEMORY_HH
#define DRF_TESTER_REF_MEMORY_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "tester/variable_map.hh"

namespace drf
{

/** Who touched a variable, and when: one line of a Table V report. */
struct AccessRecord
{
    std::uint32_t threadId = 0;
    std::uint32_t threadGroupId = 0; ///< wavefront ("thread group")
    std::uint64_t episodeId = 0;
    Addr addr = 0;
    Tick cycle = 0;
    std::uint64_t value = 0;

    /** Format one column of a Table V-style report. */
    std::string describe() const;
};

/** A detected duplicate atomic return value. */
struct AtomicViolation
{
    AccessRecord first;
    AccessRecord second;
};

/**
 * Expected values plus access history for all tester variables.
 */
class RefMemory
{
  public:
    explicit RefMemory(const VariableMap &vmap);

    /** Current globally visible value of a variable. */
    std::uint32_t value(VarId var) const { return _values[var]; }

    /**
     * Apply one retired write: the episode's release completed, so
     * @p record.value becomes the globally visible value.
     */
    void applyWrite(VarId var, const AccessRecord &record);

    /** Note a checked load (keeps the last-reader record). */
    void noteRead(VarId var, const AccessRecord &record);

    /** Last writer of a variable, if any write retired yet. */
    std::optional<AccessRecord>
    lastWriter(VarId var) const
    {
        if (!_writerValid[var])
            return std::nullopt;
        return _writerRec[var];
    }

    /** Last reader of a variable, if any. */
    std::optional<AccessRecord>
    lastReader(VarId var) const
    {
        if (!_readerValid[var])
            return std::nullopt;
        return _readerRec[var];
    }

    /**
     * Record an atomic fetch-add's returned (old) value on a sync
     * variable and check it for lost-update symptoms: every returned
     * value must be unique because the values only grow.
     *
     * @return the violation if @p record.value was already returned by an
     *         earlier atomic on this variable.
     */
    std::optional<AtomicViolation> noteAtomicReturn(VarId var,
                                                    const AccessRecord &
                                                        record);

    /**
     * Size the per-variable atomic planes for @p per_var returned
     * values up front, so the steady state never grows them. A hint:
     * larger values still work (the planes grow on demand).
     */
    void reserveAtomics(std::uint64_t per_var);

    /** Number of atomics performed on a sync variable so far. */
    std::uint64_t
    atomicCount(VarId var) const
    {
        return var < _atomicCount.size() ? _atomicCount[var] : 0;
    }

    /** Total writes retired (for stats). */
    std::uint64_t writesRetired() const { return _writesRetired; }

    /** Total reads noted (for stats). */
    std::uint64_t readsChecked() const { return _readsChecked; }

  private:
    /**
     * Dense atomic planes stay exact up to this returned value; larger
     * values (a corrupted protocol handing back garbage) divert to
     * _atomicOverflow so a bogus huge value cannot balloon memory.
     */
    static constexpr std::uint64_t denseAtomicLimit = 1ull << 22;

    const VariableMap *_vmap;

    // Hot plane: expected values, contiguous by VarId.
    std::vector<std::uint32_t> _values;

    // Validity flags (hot) and record details (cold, report-only).
    std::vector<std::uint8_t> _writerValid;
    std::vector<std::uint8_t> _readerValid;
    std::vector<AccessRecord> _writerRec;
    std::vector<AccessRecord> _readerRec;

    /**
     * Per-variable atomic-return history, indexed directly by VarId
     * (sync variables are the low ids). seen is a bitmask over returned
     * values — fetch-add(+1) yields the dense sequence 0,1,2,... — and
     * rec holds the matching records for duplicate reports.
     */
    struct AtomicPlane
    {
        std::vector<std::uint64_t> seen; ///< bit v = value v returned
        std::vector<AccessRecord> rec;   ///< cold: first return of v
    };
    std::vector<AtomicPlane> _atomicPlanes;
    std::vector<std::uint64_t> _atomicCount;

    /** Exact fallback for out-of-range returned values (cold). */
    std::map<std::pair<VarId, std::uint64_t>, AccessRecord>
        _atomicOverflow;

    std::uint64_t _writesRetired = 0;
    std::uint64_t _readsChecked = 0;
};

} // namespace drf

#endif // DRF_TESTER_REF_MEMORY_HH
