/**
 * @file
 * Episodes: the tester's critical-section-shaped unit of work
 * (Section III.A, Fig. 3).
 *
 * An episode is executed by one wavefront and consists of an atomic
 * acquire on a synchronization variable, a sequence of vector actions
 * (each lane performing a load or store on a normal variable), and an
 * atomic release on the same synchronization variable.
 *
 * The generator enforces data-race freedom *by construction* across all
 * concurrently active episodes and across the lanes of the episode
 * itself, using the paper's two rules:
 *
 *  1. no load or store is generated for a variable being stored by an
 *     active episode, and
 *  2. no store is generated for a variable being loaded by an active
 *     episode,
 *
 * where "active" includes the partially generated episode's own other
 * lanes (lockstep issue does not order memory accesses between lanes).
 * The only sanctioned read-after-write is a lane re-reading the variable
 * it wrote itself, which program order makes deterministic.
 *
 * With scoped synchronization enabled (ScopeMode::Scoped) each episode
 * additionally draws a synchronization scope: a CTA-scoped release skips
 * the write-through drain (VIPER) or dirty writeback (LRCC), and a
 * CTA-scoped acquire skips the flash invalidate, so CTA-scoped episodes
 * are ordered only within their own CU (the L1 sharing domain stands in
 * for the CTA). Two more rules keep such programs scoped-DRF:
 *
 *  3. a CTA-scoped episode only loads variables last written by its own
 *     CU (or never written) — other CUs' values may be stale in the
 *     un-invalidated L1, and
 *  4. variables written by a retired CTA-scoped episode stay "pending"
 *     on the writing CU — no other CU may load or store them — until a
 *     later GPU-scoped release from that CU flushes them to the
 *     globally visible level.
 *
 * ScopeMode::Racy draws scopes but skips rules 3/4, deliberately
 * generating scoped races so the ScopeViolation failure class is
 * reachable (the tester's negative arm).
 *
 * Episode state is structure-of-arrays: instead of one
 * vector<optional<LaneOp>> per action, an episode keeps flat per-lane-op
 * planes (variable ids, store values, write links) plus active/store
 * bitmasks, indexed CSR-style through per-action lane offsets. The hot
 * issue/check loops walk contiguous arrays; a reused Episode regenerates
 * with zero heap traffic because every plane keeps its capacity (see
 * DESIGN.md §10).
 */

#ifndef DRF_TESTER_EPISODE_HH
#define DRF_TESTER_EPISODE_HH

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "mem/scope.hh"
#include "sim/random.hh"
#include "tester/variable_map.hh"

namespace drf
{

/** Kind of a lane's op within a vector action. */
struct LaneOp
{
    enum class Kind
    {
        Load,
        Store,
    };
};

/** A generated episode (structure-of-arrays). */
struct Episode
{
    std::uint64_t id = 0;
    std::uint32_t wavefrontId = 0;
    VarId syncVar = 0;

    /**
     * Synchronization scope of the episode's acquire/release pair.
     * Scope::None (the default) is the conservative GPU-wide behavior
     * of unscoped runs.
     */
    Scope scope = Scope::None;

    /** Final value written per variable, and the lane that wrote it. */
    struct WriteInfo
    {
        unsigned lane;
        std::uint32_t value;
        Tick completedAt = 0; ///< filled in when the store is acked
    };

    /** One written variable, in first-store order. */
    struct WriteEntry
    {
        VarId var;
        WriteInfo info;
    };

    /** Sentinel write link for loads of never-written variables. */
    static constexpr std::uint32_t kNoWrite = 0xffffffffu;

    /** Written variables (one entry per variable, insertion order). */
    std::vector<WriteEntry> writes;

    /** Variables loaded by the episode (distinct, insertion order). */
    std::vector<VarId> reads;

    // ----- shape ------------------------------------------------------

    std::uint32_t numActions() const { return _numActions; }

    /** Lanes participating (active or not) in action @p a. */
    std::uint32_t
    laneCount(std::uint32_t a) const
    {
        return _laneOffset[a + 1] - _laneOffset[a];
    }

    /** True if any lane of action @p a carries an op. */
    bool actionHasActiveLane(std::uint32_t a) const { return _anyActive[a]; }

    bool
    laneActive(std::uint32_t a, std::uint32_t lane) const
    {
        return testBit(_active, _laneOffset[a] + lane);
    }

    /** @pre laneActive(a, lane) */
    bool
    laneIsStore(std::uint32_t a, std::uint32_t lane) const
    {
        return testBit(_isStore, _laneOffset[a] + lane);
    }

    /** @pre laneActive(a, lane) */
    VarId
    laneVar(std::uint32_t a, std::uint32_t lane) const
    {
        return _var[_laneOffset[a] + lane];
    }

    /** Store value of an active store lane (0 for loads). */
    std::uint32_t
    laneValue(std::uint32_t a, std::uint32_t lane) const
    {
        return _value[_laneOffset[a] + lane];
    }

    /**
     * Index into writes for a store op, or for a load reading a variable
     * this episode writes; kNoWrite otherwise.
     */
    std::uint32_t
    laneWriteIdx(std::uint32_t a, std::uint32_t lane) const
    {
        return _writeIdx[_laneOffset[a] + lane];
    }

    // ----- write/read index lookups -----------------------------------

    const WriteInfo *
    findWrite(VarId var) const
    {
        for (const WriteEntry &w : writes) {
            if (w.var == var)
                return &w.info;
        }
        return nullptr;
    }

    WriteInfo *
    findWrite(VarId var)
    {
        for (WriteEntry &w : writes) {
            if (w.var == var)
                return &w.info;
        }
        return nullptr;
    }

    bool writesVar(VarId var) const { return findWrite(var) != nullptr; }

    bool
    readsVar(VarId var) const
    {
        for (VarId v : reads) {
            if (v == var)
                return true;
        }
        return false;
    }

    // ----- building ---------------------------------------------------

    /** Reset to an empty episode, keeping every plane's capacity. */
    void
    beginBuild()
    {
        scope = Scope::None;
        _numActions = 0;
        _laneOffset.clear();
        _laneOffset.push_back(0);
        _active.clear();
        _isStore.clear();
        _var.clear();
        _value.clear();
        _writeIdx.clear();
        _anyActive.clear();
        writes.clear();
        reads.clear();
    }

    /** Append one action with @p lanes lane slots (all inactive). */
    void
    addAction(std::uint32_t lanes)
    {
        std::uint32_t base = _laneOffset.back();
        _laneOffset.push_back(base + lanes);
        _var.resize(base + lanes, 0);
        _value.resize(base + lanes, 0);
        _writeIdx.resize(base + lanes, kNoWrite);
        std::size_t words = (static_cast<std::size_t>(base) + lanes + 63) / 64;
        _active.resize(words, 0);
        _isStore.resize(words, 0);
        _anyActive.push_back(0);
        ++_numActions;
    }

    /**
     * Mark lane @p lane of action @p a as a load of @p var.
     * @param write_idx index of the episode's own write to @p var
     *        (same-lane read-after-write), or kNoWrite.
     */
    void
    setLoad(std::uint32_t a, std::uint32_t lane, VarId var,
            std::uint32_t write_idx)
    {
        std::size_t idx = _laneOffset[a] + lane;
        setBit(_active, idx);
        _var[idx] = var;
        _writeIdx[idx] = write_idx;
        _anyActive[a] = 1;
    }

    /** Mark lane @p lane of action @p a as a store of @p value. */
    void
    setStore(std::uint32_t a, std::uint32_t lane, VarId var,
             std::uint32_t value, std::uint32_t write_idx)
    {
        std::size_t idx = _laneOffset[a] + lane;
        setBit(_active, idx);
        setBit(_isStore, idx);
        _var[idx] = var;
        _value[idx] = value;
        _writeIdx[idx] = write_idx;
        _anyActive[a] = 1;
    }

    /** Append a write entry; @return its index for laneWriteIdx links. */
    std::uint32_t
    addWrite(VarId var, unsigned lane, std::uint32_t value)
    {
        writes.push_back(WriteEntry{var, WriteInfo{lane, value, 0}});
        return static_cast<std::uint32_t>(writes.size() - 1);
    }

    /**
     * Rebuild writes, reads, and the per-lane write links from the op
     * planes — the deserialization hook (trace loading fills only the
     * planes). Mirrors the generator's invariants: one write entry per
     * variable (the last store's lane/value wins, as the old hash-map
     * rebuild did) and a distinct read list in first-load order.
     */
    void rebuildIndexes();

  private:
    static bool
    testBit(const std::vector<std::uint64_t> &bits, std::size_t i)
    {
        return (bits[i / 64] >> (i % 64)) & 1u;
    }

    static void
    setBit(std::vector<std::uint64_t> &bits, std::size_t i)
    {
        bits[i / 64] |= std::uint64_t{1} << (i % 64);
    }

    std::uint32_t _numActions = 0;
    std::vector<std::uint32_t> _laneOffset{0}; ///< CSR offsets, size n+1
    std::vector<std::uint64_t> _active;     ///< lane-participates bitmask
    std::vector<std::uint64_t> _isStore;    ///< store/load bitmask
    std::vector<VarId> _var;                ///< per-lane-op variable
    std::vector<std::uint32_t> _value;      ///< per-lane-op store value
    std::vector<std::uint32_t> _writeIdx;   ///< per-lane-op write link
    std::vector<std::uint8_t> _anyActive;   ///< per-action fast skip
};

/** Knobs for episode generation. */
struct EpisodeGenConfig
{
    unsigned actionsPerEpisode = 100;
    unsigned lanes = 16;          ///< wavefront width
    unsigned storePct = 40;       ///< store probability per lane op
    unsigned laneActivePct = 75;  ///< probability a lane joins an action
    unsigned pickAttempts = 16;   ///< rule-satisfying variable search

    /**
     * Scoped-synchronization mode. ScopeMode::None draws no scopes (and
     * performs zero extra RNG draws, keeping unscoped runs bit-identical
     * to pre-scope builds); Scoped draws a scope per episode and
     * enforces rules 3/4 above; Racy draws scopes without the rules.
     */
    ScopeMode scopeMode = ScopeMode::None;
    unsigned ctaScopePct = 50; ///< CTA probability per scoped episode
    unsigned wfsPerCu = 1;     ///< wavefronts per CU (CU = wfId / this)
};

/**
 * Generates race-free episodes and tracks the active-episode conflict
 * sets.
 */
class EpisodeGenerator
{
  public:
    EpisodeGenerator(const VariableMap &vmap, const EpisodeGenConfig &cfg,
                     Random &rng);

    /**
     * Generate the next episode for @p wavefront_id into @p out,
     * reusing its storage (steady-state generation is allocation-free).
     * The episode is immediately accounted active; call retire() when
     * its release completes.
     */
    void generateInto(Episode &out, std::uint32_t wavefront_id);

    /** Convenience wrapper returning a fresh episode. */
    Episode
    generate(std::uint32_t wavefront_id)
    {
        Episode e;
        generateInto(e, wavefront_id);
        return e;
    }

    /** Remove a retired episode from the active conflict sets. */
    void retire(const Episode &episode);

    /** Episodes generated so far. */
    std::uint64_t generated() const { return _nextEpisodeId; }

    /** Active (generated, not retired) episode count. */
    std::uint64_t active() const { return _activeCount; }

    /** Current count of active episodes reading a variable. */
    std::uint32_t
    activeReaders(VarId var) const
    {
        return _activeReaders[var];
    }

    /** Current count of active episodes writing a variable. */
    std::uint32_t
    activeWriters(VarId var) const
    {
        return _activeWriters[var];
    }

  private:
    /** Try to pick a variable a store by CU @p cu may legally target. */
    std::optional<VarId> pickStoreVar(unsigned cu);

    /** Try to pick a variable a load on @p lane may legally target. */
    std::optional<VarId> pickLoadVar(unsigned lane, unsigned cu,
                                     Scope scope);

    /** Scoped-discipline bookkeeping at episode retirement (rule 4). */
    void retireScoped(const Episode &episode);

    const VariableMap *_vmap;
    EpisodeGenConfig _cfg;
    Random *_rng;

    /** Indexed by VarId: hot-path conflict lookups are O(1). */
    std::vector<std::uint32_t> _activeReaders;
    std::vector<std::uint32_t> _activeWriters;
    std::uint64_t _activeCount = 0;

    /**
     * Per-variable scratch for the episode currently being generated
     * (cleared via the episode's write/read lists after each build):
     * the writing lane (-1 = none), its write-entry index, and a
     * read-membership flag. These answer the generation rules' own-
     * episode membership queries in O(1) without a per-episode hash map.
     */
    std::vector<std::int32_t> _epWriterLane;
    std::vector<std::uint32_t> _epWriteIdx;
    std::vector<std::uint8_t> _epRead;

    /**
     * Scoped-discipline planes (ScopeMode::Scoped only). Per variable:
     * the CU of the last retired writer (-1 = never written), and the
     * owner of not-yet-flushed CTA-scoped writes (-1 = none). The stamp
     * records the episode-id horizon at which a CTA-pending entry was
     * (re-)armed: a GPU-scoped episode only flushes entries stamped
     * before its own generation, because its release's writeback/drain
     * sweep predates anything dirtied afterwards.
     */
    std::vector<std::int32_t> _lastWriterCu;
    std::vector<std::int32_t> _ctaPendingOwner;
    std::vector<std::uint64_t> _ctaPendingStamp;
    std::vector<std::vector<VarId>> _ctaPendingByCu;

    std::uint64_t _nextEpisodeId = 0;
    std::uint32_t _nextStoreValue = 1;
};

} // namespace drf

#endif // DRF_TESTER_EPISODE_HH
