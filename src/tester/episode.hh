/**
 * @file
 * Episodes: the tester's critical-section-shaped unit of work
 * (Section III.A, Fig. 3).
 *
 * An episode is executed by one wavefront and consists of an atomic
 * acquire on a synchronization variable, a sequence of vector actions
 * (each lane performing a load or store on a normal variable), and an
 * atomic release on the same synchronization variable.
 *
 * The generator enforces data-race freedom *by construction* across all
 * concurrently active episodes and across the lanes of the episode
 * itself, using the paper's two rules:
 *
 *  1. no load or store is generated for a variable being stored by an
 *     active episode, and
 *  2. no store is generated for a variable being loaded by an active
 *     episode,
 *
 * where "active" includes the partially generated episode's own other
 * lanes (lockstep issue does not order memory accesses between lanes).
 * The only sanctioned read-after-write is a lane re-reading the variable
 * it wrote itself, which program order makes deterministic.
 */

#ifndef DRF_TESTER_EPISODE_HH
#define DRF_TESTER_EPISODE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/random.hh"
#include "tester/variable_map.hh"

namespace drf
{

/** What one lane does in one vector action. */
struct LaneOp
{
    enum class Kind
    {
        Load,
        Store,
    };

    Kind kind = Kind::Load;
    VarId var = 0;
    std::uint32_t storeValue = 0; ///< globally unique, for stores
};

/** One lockstep step of a wavefront: an op per participating lane. */
struct VectorAction
{
    /** Index i is lane i's op; disengaged lanes skip the step. */
    std::vector<std::optional<LaneOp>> lanes;
};

/** A generated episode. */
struct Episode
{
    std::uint64_t id = 0;
    std::uint32_t wavefrontId = 0;
    VarId syncVar = 0;
    std::vector<VectorAction> actions;

    /** Final value written per variable, and the lane that wrote it. */
    struct WriteInfo
    {
        unsigned lane;
        std::uint32_t value;
        Tick completedAt = 0; ///< filled in when the store is acked
    };
    std::unordered_map<VarId, WriteInfo> writes;

    /** Variables loaded by the episode (distinct). */
    std::unordered_set<VarId> reads;
};

/** Knobs for episode generation. */
struct EpisodeGenConfig
{
    unsigned actionsPerEpisode = 100;
    unsigned lanes = 16;          ///< wavefront width
    unsigned storePct = 40;       ///< store probability per lane op
    unsigned laneActivePct = 75;  ///< probability a lane joins an action
    unsigned pickAttempts = 16;   ///< rule-satisfying variable search
};

/**
 * Generates race-free episodes and tracks the active-episode conflict
 * sets.
 */
class EpisodeGenerator
{
  public:
    EpisodeGenerator(const VariableMap &vmap, const EpisodeGenConfig &cfg,
                     Random &rng);

    /**
     * Generate the next episode for @p wavefront_id. The episode is
     * immediately accounted active; call retire() when its release
     * completes.
     */
    Episode generate(std::uint32_t wavefront_id);

    /** Remove a retired episode from the active conflict sets. */
    void retire(const Episode &episode);

    /** Episodes generated so far. */
    std::uint64_t generated() const { return _nextEpisodeId; }

    /** Active (generated, not retired) episode count. */
    std::uint64_t active() const { return _activeCount; }

    /** Current count of active episodes reading a variable. */
    std::uint32_t
    activeReaders(VarId var) const
    {
        return _activeReaders[var];
    }

    /** Current count of active episodes writing a variable. */
    std::uint32_t
    activeWriters(VarId var) const
    {
        return _activeWriters[var];
    }

  private:
    /** Try to pick a variable a store may legally target. */
    std::optional<VarId> pickStoreVar(const Episode &episode);

    /** Try to pick a variable a load on @p lane may legally target. */
    std::optional<VarId> pickLoadVar(const Episode &episode,
                                     unsigned lane);

    const VariableMap *_vmap;
    EpisodeGenConfig _cfg;
    Random *_rng;

    /** Indexed by VarId: hot-path conflict lookups are O(1). */
    std::vector<std::uint32_t> _activeReaders;
    std::vector<std::uint32_t> _activeWriters;
    std::uint64_t _activeCount = 0;

    std::uint64_t _nextEpisodeId = 0;
    std::uint32_t _nextStoreValue = 1;
};

} // namespace drf

#endif // DRF_TESTER_EPISODE_HH
