/**
 * @file
 * The three ShardSource strategies: sweep, random, guided.
 *
 * All three draw from one arm list (config genomes; by default the 24
 * Table III presets) and one GenomeScale, issue globally unique seeds
 * from a single counter starting at the master seed, and remember the
 * full preset behind every issued shard so a failure can be
 * re-recorded as a self-contained trace.
 *
 * GuidedSource is the tentpole: a deterministic UCB1 bandit over the
 * arms, rewarded with newly covered union cells per kilo-episode. An
 * arm's first play is a cheap probe (episodes/WF capped) so the whole
 * arm space can be scored for a fraction of a blind campaign's
 * episode budget; exploitation then replays profitable arms at full
 * budget and occasionally adds a bounded mutation of the current best
 * genome as a fresh arm. Every decision is logged (GuidanceDecision)
 * for the campaign JSON and the trace header.
 */

#ifndef DRF_GUIDANCE_SOURCES_HH
#define DRF_GUIDANCE_SOURCES_HH

#include <map>

#include "guidance/bandit.hh"
#include "guidance/shard_source.hh"

namespace drf
{

/** Knobs shared by every source strategy. */
struct SourceConfig
{
    /** Bandit arms / sampling pool; empty = the Table III sweep. */
    std::vector<ConfigGenome> arms;
    GenomeScale scale;
    std::uint64_t masterSeed = 1;
    std::size_t batchSize = 4;
    /** Hard cap on shards issued (the sweep/random campaign length). */
    std::size_t maxShards = 32;
};

/** Genomes of the 24 Table III presets, sweep order. */
std::vector<ConfigGenome> tableIIIArms();

/** Base: arm bookkeeping + unique seeds + preset memory. */
class ArmSourceBase : public ShardSource
{
  public:
    explicit ArmSourceBase(const SourceConfig &cfg);

    std::optional<GpuTestPreset>
    presetForSeed(std::uint64_t seed) const override;

    std::optional<ShardLease>
    leaseForSeed(std::uint64_t seed) const override;

    std::size_t shardsIssued() const { return _shardsIssued; }

  protected:
    /** Build one shard of @p genome, assigning the next unique seed. */
    ShardSpec makeShard(const ConfigGenome &genome);

    SourceConfig _cfg;
    std::size_t _shardsIssued = 0;

  private:
    struct Issued
    {
        GpuTestPreset preset;
        ConfigGenome genome; ///< as issued (probe cap applied)
    };

    std::uint64_t _nextSeed;
    std::map<std::uint64_t, Issued> _issued;
};

/** The status quo: the arm list in order, wrapping, maxShards total. */
class SweepSource : public ArmSourceBase
{
  public:
    explicit SweepSource(const SourceConfig &cfg) : ArmSourceBase(cfg) {}

    Strategy strategy() const override { return Strategy::Sweep; }
    std::vector<ShardSpec> nextBatch() override;
};

/** Blind baseline: uniform arm choice per shard, maxShards total. */
class RandomSource : public ArmSourceBase
{
  public:
    explicit RandomSource(const SourceConfig &cfg)
        : ArmSourceBase(cfg), _rng(cfg.masterSeed)
    {
    }

    Strategy strategy() const override { return Strategy::Random; }
    std::vector<ShardSpec> nextBatch() override;

  private:
    Random _rng;
};

/** Guided-mode policy knobs. */
struct GuidedOptions
{
    /** Episodes/WF cap applied to an arm's first (probe) play. */
    unsigned probeEpisodesPerWf = 10;
    /** UCB1 exploration constant (scaled by the max observed reward). */
    double exploration = 0.5;
    /** Chance per round of adding a mutant of the best genome. */
    unsigned mutationPct = 25;
    /** Cap on mutant arms added over the campaign. */
    std::size_t maxMutants = 16;
    GenomeBounds bounds;

    // Stop conditions (0 = disabled), checked between rounds:
    std::size_t targetL1Active = 0; ///< stop at this union L1 active
    std::size_t targetL2Active = 0; ///< ... and this union L2 active
    std::uint64_t episodeBudget = 0; ///< stop when episodes exceed this
};

/** One guided-scheduler decision, fully reproducible from the seed. */
struct GuidanceDecision
{
    std::size_t round = 0;
    std::size_t arm = 0;
    bool mutant = false; ///< arm was bred, not a preset
    bool probe = false;  ///< first play, episodes/WF capped
    ConfigGenome genome; ///< as issued (probe cap applied)
    std::vector<std::uint64_t> seeds;

    // Filled once the round's shards all reported back:
    std::uint64_t episodes = 0;
    std::uint64_t actions = 0;
    std::size_t newCells = 0;
    double rewardPerKiloEpisode = 0.0;
};

/** The coverage-guided scheduler (see file header). */
class GuidedSource : public ArmSourceBase
{
  public:
    GuidedSource(const SourceConfig &cfg, const GuidedOptions &opts = {});

    Strategy strategy() const override { return Strategy::Guided; }
    std::vector<ShardSpec> nextBatch() override;
    void report(const ShardOutcome &outcome,
                const ShardFeedback &feedback) override;

    const std::vector<GuidanceDecision> &decisions() const
    {
        return _decisions;
    }

    /** Total episodes reported back so far. */
    std::uint64_t episodesObserved() const { return _episodesTotal; }

  private:
    struct Arm
    {
        ConfigGenome genome;
        bool mutant = false;
    };

    bool done() const;
    std::size_t bestArm() const;
    void maybeBreedMutant();

    GuidedOptions _opts;
    Random _rng;
    Ucb1Bandit _bandit;
    std::vector<Arm> _arms;
    std::size_t _numPresetArms = 0;
    std::size_t _mutants = 0;

    std::vector<GuidanceDecision> _decisions;
    std::uint64_t _episodesTotal = 0;
    std::size_t _unionL1Active = 0;
    std::size_t _unionL2Active = 0;

    // In-flight round state.
    std::size_t _pendingArm = 0;
    std::size_t _pendingExpected = 0;
    std::size_t _pendingReceived = 0;
};

} // namespace drf

#endif // DRF_GUIDANCE_SOURCES_HH
