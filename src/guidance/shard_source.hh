/**
 * @file
 * Shard sources: pluggable strategies that feed the campaign loop.
 *
 * runAdaptiveCampaign (adaptive_campaign.hh) closes the
 * coverage-feedback loop: it repeatedly asks a ShardSource for the
 * next batch of shards, runs the batch on the existing work-stealing
 * campaign pool, merges coverage, and reports each shard's outcome —
 * including how many union cells it covered first — back to the
 * source, which uses the signal (or ignores it) to choose the next
 * batch.
 *
 * Feedback is delivered batch-by-batch in shard-index order, never in
 * thread completion order. Because per-shard results are bit-exact
 * functions of (configuration, seed), the feedback stream a source
 * observes — and therefore every decision it makes — is identical
 * across thread counts and re-runs with the same master seed.
 *
 * Strategies:
 *  - sweep:  the Table III presets in order (the status quo);
 *  - random: blind uniform sampling of the preset arms;
 *  - guided: UCB1 over the preset arms + bounded mutation of the best
 *            genome, rewarded by newly covered cells per kilo-episode.
 */

#ifndef DRF_GUIDANCE_SHARD_SOURCE_HH
#define DRF_GUIDANCE_SHARD_SOURCE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "guidance/genome.hh"

namespace drf
{

/** Campaign scheduling strategy. */
enum class Strategy
{
    Random,
    Sweep,
    Guided,
    Explore, ///< bounded schedule exploration (src/predict/explore.hh)
};

const char *strategyName(Strategy s);
std::optional<Strategy> parseStrategy(const std::string &name);

/**
 * Triage summary of a predictive race pass (src/predict/). Lives here —
 * not in src/predict/ — so the campaign JSON writer can always emit the
 * block (zeros for strategies that never run the pass) without the
 * guidance library depending on the predict library; sources that do
 * run the pass override ShardSource::predictTriage().
 */
struct PredictTriage
{
    std::size_t candidates = 0; ///< HB-unordered conflicting pairs
    std::size_t confirmed = 0;  ///< witness replay manifested a failure
    std::size_t demoted = 0;    ///< survived every witness probe
    std::size_t interleavings = 0; ///< witness/exploration replays run
    /** First finding's access pair, human-readable; empty when none. */
    std::string firstPair;
};

/**
 * A wire-serializable shard description: everything a remote worker
 * needs to execute one shard bit-identically to a local run. The
 * genome is the one *as issued* (a guided probe's episode cap already
 * applied), so genomeToPreset(genome, scale, seed) reconstructs the
 * exact GpuTestPreset — including its name — that a local campaign
 * would have run. The index is the shard's global position in the
 * campaign (assigned by the driving loop, not the source).
 */
struct ShardLease
{
    std::size_t index = 0;
    std::string name;
    std::uint64_t seed = 0;
    ConfigGenome genome;
    GenomeScale scale;
};

/** What the adaptive runner reports back for one completed shard. */
struct ShardFeedback
{
    std::uint64_t episodes = 0;
    std::uint64_t actions = 0;
    std::size_t newL1Cells = 0; ///< union cells this shard covered first
    std::size_t newL2Cells = 0;
    std::size_t unionL1Active = 0; ///< union actives after the merge
    std::size_t unionL2Active = 0;
    bool passed = true;
};

/** A strategy feeding shards to the adaptive campaign loop. */
class ShardSource
{
  public:
    virtual ~ShardSource() = default;

    virtual Strategy strategy() const = 0;

    /** Next batch of shards to run; empty means the campaign is done. */
    virtual std::vector<ShardSpec> nextBatch() = 0;

    /**
     * Outcome of one shard of the last batch, in shard-index order.
     * Every shard of a batch is reported before the next nextBatch().
     */
    virtual void
    report(const ShardOutcome &outcome, const ShardFeedback &feedback)
    {
        (void)outcome;
        (void)feedback;
    }

    /**
     * The full preset a previously issued shard ran (looked up by its
     * unique seed), for re-recording a failing shard as a trace.
     */
    virtual std::optional<GpuTestPreset>
    presetForSeed(std::uint64_t seed) const
    {
        (void)seed;
        return std::nullopt;
    }

    /**
     * The wire-serializable description of a previously issued shard
     * (fleet coordinator; lease.index is left for the caller to fill).
     * Sources that cannot describe their shards as genomes return
     * nullopt, which makes them local-only.
     */
    virtual std::optional<ShardLease>
    leaseForSeed(std::uint64_t seed) const
    {
        (void)seed;
        return std::nullopt;
    }

    /**
     * Predictive-race triage accumulated by this source, if it runs
     * the predictive pass (Strategy::Explore). nullopt — rendered as a
     * zero block in the campaign JSON — for strategies that don't.
     */
    virtual std::optional<PredictTriage> predictTriage() const
    {
        return std::nullopt;
    }
};

} // namespace drf

#endif // DRF_GUIDANCE_SHARD_SOURCE_HH
