#include "guidance/sources.hh"

#include <algorithm>
#include <cassert>

namespace drf
{

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::Random: return "random";
      case Strategy::Sweep: return "sweep";
      case Strategy::Guided: return "guided";
      case Strategy::Explore: return "explore";
    }
    return "?";
}

std::optional<Strategy>
parseStrategy(const std::string &name)
{
    for (Strategy s : {Strategy::Random, Strategy::Sweep,
                       Strategy::Guided, Strategy::Explore}) {
        if (name == strategyName(s))
            return s;
    }
    return std::nullopt;
}

std::vector<ConfigGenome>
tableIIIArms()
{
    std::vector<ConfigGenome> arms;
    for (const GpuTestPreset &preset : makeGpuTestSweep())
        arms.push_back(genomeFromPreset(preset));
    return arms;
}

ArmSourceBase::ArmSourceBase(const SourceConfig &cfg)
    : _cfg(cfg), _nextSeed(cfg.masterSeed)
{
    if (_cfg.arms.empty())
        _cfg.arms = tableIIIArms();
}

std::optional<GpuTestPreset>
ArmSourceBase::presetForSeed(std::uint64_t seed) const
{
    auto it = _issued.find(seed);
    if (it == _issued.end())
        return std::nullopt;
    return it->second.preset;
}

std::optional<ShardLease>
ArmSourceBase::leaseForSeed(std::uint64_t seed) const
{
    auto it = _issued.find(seed);
    if (it == _issued.end())
        return std::nullopt;
    ShardLease lease;
    lease.name = it->second.preset.name;
    lease.seed = seed;
    lease.genome = it->second.genome;
    lease.scale = _cfg.scale;
    return lease;
}

ShardSpec
ArmSourceBase::makeShard(const ConfigGenome &genome)
{
    std::uint64_t seed = _nextSeed++;
    GpuTestPreset preset = genomeToPreset(genome, _cfg.scale, seed);
    _issued.emplace(seed, Issued{preset, genome});
    ++_shardsIssued;
    return gpuShard(preset);
}

std::vector<ShardSpec>
SweepSource::nextBatch()
{
    std::vector<ShardSpec> batch;
    while (_shardsIssued < _cfg.maxShards &&
           batch.size() < _cfg.batchSize) {
        batch.push_back(
            makeShard(_cfg.arms[_shardsIssued % _cfg.arms.size()]));
    }
    return batch;
}

std::vector<ShardSpec>
RandomSource::nextBatch()
{
    std::vector<ShardSpec> batch;
    while (_shardsIssued < _cfg.maxShards &&
           batch.size() < _cfg.batchSize) {
        batch.push_back(
            makeShard(_cfg.arms[_rng.below(_cfg.arms.size())]));
    }
    return batch;
}

GuidedSource::GuidedSource(const SourceConfig &cfg,
                           const GuidedOptions &opts)
    : ArmSourceBase(cfg), _opts(opts), _rng(cfg.masterSeed ^
                                            0x9e3779b97f4a7c15ull),
      _bandit(opts.exploration)
{
    for (const ConfigGenome &genome : _cfg.arms) {
        _arms.push_back({genome, false});
        _bandit.addArm();
    }
    _numPresetArms = _arms.size();
}

bool
GuidedSource::done() const
{
    if (_shardsIssued >= _cfg.maxShards)
        return true;
    if (_opts.episodeBudget != 0 &&
        _episodesTotal >= _opts.episodeBudget)
        return true;
    if (_opts.targetL1Active != 0 && _opts.targetL2Active != 0 &&
        _unionL1Active >= _opts.targetL1Active &&
        _unionL2Active >= _opts.targetL2Active)
        return true;
    return false;
}

std::size_t
GuidedSource::bestArm() const
{
    std::size_t best = 0;
    double best_mean = -1.0;
    for (std::size_t i = 0; i < _arms.size(); ++i) {
        if (_bandit.plays(i) == 0)
            continue;
        double m = _bandit.mean(i);
        if (m > best_mean) {
            best = i;
            best_mean = m;
        }
    }
    return best;
}

void
GuidedSource::maybeBreedMutant()
{
    // Only once every preset arm has been scored: mutating before the
    // probe sweep finished would just dilute exploration.
    if (_bandit.totalPlays() < _numPresetArms ||
        _mutants >= _opts.maxMutants || !_rng.pct(_opts.mutationPct))
        return;
    ConfigGenome bred =
        mutateGenome(_arms[bestArm()].genome, _rng, _opts.bounds);
    // Skip exact duplicates of an existing arm.
    for (const Arm &arm : _arms) {
        if (arm.genome == bred)
            return;
    }
    _arms.push_back({bred, true});
    _bandit.addArm();
    ++_mutants;
}

std::vector<ShardSpec>
GuidedSource::nextBatch()
{
    assert(_pendingReceived == _pendingExpected &&
           "previous batch not fully reported");
    if (done())
        return {};

    maybeBreedMutant();
    std::size_t arm = _bandit.select();
    bool probe = _bandit.plays(arm) == 0;
    ConfigGenome genome = _arms[arm].genome;
    if (probe) {
        genome.episodesPerWf = std::min(genome.episodesPerWf,
                                        _opts.probeEpisodesPerWf);
    }

    GuidanceDecision decision;
    decision.round = _decisions.size();
    decision.arm = arm;
    decision.mutant = _arms[arm].mutant;
    decision.probe = probe;
    decision.genome = genome;

    std::vector<ShardSpec> batch;
    while (_shardsIssued < _cfg.maxShards &&
           batch.size() < _cfg.batchSize) {
        ShardSpec shard = makeShard(genome);
        decision.seeds.push_back(shard.seed);
        batch.push_back(std::move(shard));
    }
    _decisions.push_back(std::move(decision));

    _pendingArm = arm;
    _pendingExpected = batch.size();
    _pendingReceived = 0;
    return batch;
}

void
GuidedSource::report(const ShardOutcome &outcome,
                     const ShardFeedback &feedback)
{
    (void)outcome;
    assert(!_decisions.empty() && _pendingReceived < _pendingExpected);
    GuidanceDecision &decision = _decisions.back();
    decision.episodes += feedback.episodes;
    decision.actions += feedback.actions;
    decision.newCells += feedback.newL1Cells + feedback.newL2Cells;
    _episodesTotal += feedback.episodes;
    _unionL1Active = feedback.unionL1Active;
    _unionL2Active = feedback.unionL2Active;

    if (++_pendingReceived == _pendingExpected) {
        decision.rewardPerKiloEpisode =
            decision.episodes > 0
                ? static_cast<double>(decision.newCells) * 1000.0 /
                      static_cast<double>(decision.episodes)
                : 0.0;
        _bandit.update(_pendingArm, decision.rewardPerKiloEpisode);
    }
}

} // namespace drf
