/**
 * @file
 * The adaptive campaign loop: ShardSource in, campaign batches out.
 *
 * runAdaptiveCampaign() repeatedly pulls a batch from the source, runs
 * it on the existing work-stealing campaign pool (src/campaign/), and
 * feeds every shard's outcome back in shard-index order with its
 * newly-covered-cell counts computed against the cross-batch union.
 *
 * Determinism contract: per-shard results are bit-exact functions of
 * (configuration, seed); batch aggregates and index-ordered outcome
 * lists are thread-count invariant; and the source only ever observes
 * that index-ordered stream. Therefore two runs with the same master
 * seed and no failing shard produce the identical shard schedule,
 * decision log, and union-coverage digest at any worker count. (After
 * a failure with stopOnFailure, which shards of the final batch were
 * skipped is completion-order dependent — everything up to and
 * including the first failure is still reproducible.)
 */

#ifndef DRF_GUIDANCE_ADAPTIVE_CAMPAIGN_HH
#define DRF_GUIDANCE_ADAPTIVE_CAMPAIGN_HH

#include "guidance/sources.hh"
#include "tester/tester_failure.hh"

namespace drf
{

/** Loop-level policy (per-batch runs inherit jobs/stopOnFailure). */
struct AdaptiveCampaignConfig
{
    /** Worker threads per batch; 0 means hardware concurrency. */
    unsigned jobs = 0;

    /** Stop pulling batches once any shard fails. */
    bool stopOnFailure = true;

    /** Test type used for coverage percentages. */
    std::string coverageTestType = "gpu_tester";

    /**
     * Early-stop on union coverage percent across L1 and L2, checked
     * after each batch; <= 0 disables.
     */
    double saturationPct = 0.0;
};

/** Aggregated result of one adaptive (source-driven) campaign. */
struct AdaptiveCampaignResult
{
    Strategy strategy = Strategy::Sweep;
    bool passed = true;
    std::size_t rounds = 0;
    std::size_t shardsRun = 0;
    unsigned jobs = 0;

    std::uint64_t totalEpisodes = 0;
    std::uint64_t totalActions = 0;
    std::uint64_t totalEvents = 0;
    double wallSeconds = 0.0;

    std::optional<ShardFailure> firstFailure;
    FailureClass firstFailureClass = FailureClass::None;
    /** Preset of the first failing shard (for trace re-recording). */
    std::optional<GpuTestPreset> failurePreset;

    std::optional<CoverageGrid> l1Union;
    std::optional<CoverageGrid> l2Union;

    /**
     * Digest of both unions' active cell sets — the campaign's
     * reproducibility fingerprint (0 when no coverage was observed).
     */
    std::uint64_t unionDigest = 0;

    /** Per-shard curve in deterministic feedback order. */
    std::vector<CoveragePoint> curve;

    /** Guided mode only: the full decision log. */
    std::vector<GuidanceDecision> decisions;

    /**
     * Explore mode only: predictive-race triage from the source.
     * nullopt when the strategy never ran the predictive pass; the
     * campaign JSON renders that as an all-zero block, so aggregates
     * stay byte-comparable across strategies and runs.
     */
    std::optional<PredictTriage> predictTriage;
};

/**
 * The feedback half of the adaptive loop, factored out so the
 * single-process runner (runAdaptiveCampaign) and the fleet
 * coordinator (src/fleet) build their aggregates through literally the
 * same code: cross-batch union accumulation, the per-shard curve,
 * first-failure capture, and the index-ordered report() stream to the
 * source. Feed outcomes strictly in shard-index order within each
 * batch; because per-shard results are bit-exact functions of
 * (configuration, seed), the resulting AdaptiveCampaignResult is then
 * identical however the outcomes were actually computed — threads,
 * worker processes, remote hosts, or a resume journal.
 */
class FeedbackLoop
{
  public:
    FeedbackLoop(ShardSource &source, const AdaptiveCampaignConfig &cfg);

    /** Account one non-empty batch pulled from the source. */
    void beginRound();

    /**
     * Feed one completed shard, batch-local index order. @p
     * wall_seconds stamps the curve point (a per-run field, excluded
     * from the deterministic aggregate subset).
     */
    void onOutcome(const ShardOutcome &out, double wall_seconds);

    /** True once failure/saturation policy says to stop pulling. */
    bool stopRequested() const;

    std::size_t shardsRun() const { return _res.shardsRun; }

    /** Finalize: unions, digest, decision log. Call once. */
    AdaptiveCampaignResult take(double wall_seconds, unsigned jobs);

  private:
    ShardSource &_source;
    const AdaptiveCampaignConfig _cfg;
    AdaptiveCampaignResult _res;
    CoverageAccumulator _l1;
    CoverageAccumulator _l2;
};

/** Drive @p source to completion under @p cfg. */
AdaptiveCampaignResult
runAdaptiveCampaign(ShardSource &source,
                    const AdaptiveCampaignConfig &cfg = {});

/** Decision log as a JSON array (embedded in campaign JSON/traces). */
std::string guidanceDecisionsJson(
    const std::vector<GuidanceDecision> &decisions);

/** Full adaptive campaign summary as one JSON object. */
std::string adaptiveCampaignToJson(const AdaptiveCampaignResult &result,
                                   const std::string &coverage_test_type);

/**
 * The deterministic subset of the campaign summary: everything in
 * adaptiveCampaignToJson except wall-clock fields and the worker
 * count. Two runs of the same source configuration and master seed —
 * whatever their thread count, worker fleet size, result arrival
 * order, or resume history — must produce byte-identical output here;
 * the fleet tests and CI compare these strings directly.
 */
std::string
adaptiveAggregatesJson(const AdaptiveCampaignResult &result,
                       const std::string &coverage_test_type);

} // namespace drf

#endif // DRF_GUIDANCE_ADAPTIVE_CAMPAIGN_HH
