/**
 * @file
 * Deterministic UCB1 bandit over configuration arms.
 *
 * The guided scheduler treats each config genome as a bandit arm whose
 * reward is "newly covered cells per kilo-episode". Classic UCB1
 * (Auer et al. 2002): play every arm once, then play the arm
 * maximizing  mean + c * scale * sqrt(ln(totalPlays) / plays).
 *
 * Two departures, both for this workload:
 *  - rewards are not [0, 1]: the exploration term is scaled by the
 *    largest reward observed so far, making the policy invariant to
 *    the units of the reward;
 *  - everything is deterministic: ties break toward the lowest arm
 *    index, and there is no randomization anywhere, so a guided
 *    campaign's arm sequence is a pure function of the reward stream.
 */

#ifndef DRF_GUIDANCE_BANDIT_HH
#define DRF_GUIDANCE_BANDIT_HH

#include <cstdint>
#include <vector>

namespace drf
{

class Ucb1Bandit
{
  public:
    explicit Ucb1Bandit(double exploration = 1.0)
        : _exploration(exploration)
    {
    }

    /** Add an arm; returns its index. */
    std::size_t
    addArm()
    {
        _arms.push_back({});
        return _arms.size() - 1;
    }

    std::size_t numArms() const { return _arms.size(); }
    std::uint64_t totalPlays() const { return _totalPlays; }

    std::uint64_t plays(std::size_t arm) const
    {
        return _arms[arm].plays;
    }

    /** Mean reward of an arm; 0 while unplayed. */
    double mean(std::size_t arm) const;

    /**
     * UCB score of a played arm (mean + scaled exploration bonus).
     * @pre plays(arm) > 0 and totalPlays() > 0
     */
    double ucbScore(std::size_t arm) const;

    /**
     * Arm to play next: the lowest-index unplayed arm if any, else the
     * highest UCB score (ties toward the lowest index).
     * @pre numArms() > 0
     */
    std::size_t select() const;

    /** Record one play of @p arm with observed @p reward. */
    void update(std::size_t arm, double reward);

  private:
    struct Arm
    {
        std::uint64_t plays = 0;
        double rewardSum = 0.0;
    };

    std::vector<Arm> _arms;
    std::uint64_t _totalPlays = 0;
    double _exploration;
    double _rewardScale = 0.0; ///< max reward seen
};

} // namespace drf

#endif // DRF_GUIDANCE_BANDIT_HH
