#include "guidance/genome.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace drf
{

std::uint64_t
addrRangeForDensity(std::uint32_t num_vars, double density,
                    unsigned line_bytes, unsigned var_bytes)
{
    if (density <= 0.0)
        density = 1.0;
    // density ~= num_vars * line_bytes / range, solved for range.
    auto range = static_cast<std::uint64_t>(
        static_cast<double>(num_vars) * line_bytes / density);
    // The random mapping draws distinct slots; keep >= 2x headroom so
    // placement always terminates quickly.
    std::uint64_t min_range =
        2ull * num_vars * var_bytes;
    range = std::max(range, min_range);
    // Round up to whole lines.
    return (range + line_bytes - 1) / line_bytes * line_bytes;
}

double
colocDensityOf(const VariableMapConfig &cfg)
{
    std::uint32_t vars = cfg.numSyncVars + cfg.numNormalVars;
    if (cfg.addrRangeBytes == 0)
        return 0.0;
    return static_cast<double>(vars) * cfg.lineBytes /
           static_cast<double>(cfg.addrRangeBytes);
}

std::string
genomeName(const ConfigGenome &g)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s/a%u/e%u/s%u/d%g/cu%u",
                  cacheSizeClassName(g.cacheClass), g.actionsPerEpisode,
                  g.episodesPerWf, g.atomicLocs, g.colocDensity,
                  g.numCus);
    // Protocol/scope tokens only appear when non-default, so unscoped
    // VIPER names (journal keys, bandit arm ids) are unchanged.
    std::string name = buf;
    if (g.protocol != ProtocolKind::Viper)
        name += std::string("/p-") + protocolKindName(g.protocol);
    if (g.scopeMode != ScopeMode::None)
        name += std::string("/sc-") + scopeModeName(g.scopeMode);
    return name;
}

GpuTestPreset
genomeToPreset(const ConfigGenome &g, const GenomeScale &scale,
               std::uint64_t seed)
{
    GpuTestPreset preset;
    preset.cacheClass = g.cacheClass;
    preset.system = makeGpuSystemConfig(g.cacheClass, g.numCus);
    preset.system.l1.protocol = g.protocol;
    preset.system.fault = scale.fault;
    preset.system.faultTriggerPct = scale.faultTriggerPct;
    preset.tester = makeGpuTesterConfig(g.actionsPerEpisode,
                                        g.episodesPerWf, g.atomicLocs,
                                        seed);
    preset.tester.scopeMode = g.scopeMode;
    preset.tester.lanes = scale.lanes;
    preset.tester.episodeGen.lanes = scale.lanes;
    preset.tester.wfsPerCu = scale.wfsPerCu;
    preset.tester.variables.numNormalVars = scale.numNormalVars;
    preset.tester.variables.addrRangeBytes = addrRangeForDensity(
        g.atomicLocs + scale.numNormalVars, g.colocDensity,
        preset.tester.variables.lineBytes,
        preset.tester.variables.varBytes);
    preset.name =
        genomeName(g) + "/seed" + std::to_string(seed);
    return preset;
}

ConfigGenome
genomeFromPreset(const GpuTestPreset &preset)
{
    ConfigGenome g;
    g.cacheClass = preset.cacheClass;
    g.actionsPerEpisode = preset.tester.episodeGen.actionsPerEpisode;
    g.episodesPerWf = preset.tester.episodesPerWf;
    g.atomicLocs = preset.tester.variables.numSyncVars;
    g.colocDensity = colocDensityOf(preset.tester.variables);
    g.numCus = preset.system.numCus;
    g.protocol = preset.system.l1.protocol;
    g.scopeMode = preset.tester.scopeMode;
    return g;
}

namespace
{

/** Halve or double within [lo, hi], reflecting off the bounds. */
template <typename T>
T
step(T value, bool up, T lo, T hi)
{
    if (up && value * 2 > hi)
        up = false;
    else if (!up && value / 2 < lo)
        up = true;
    T next = up ? value * 2 : value / 2;
    return std::clamp(next, lo, hi);
}

} // namespace

ConfigGenome
mutateGenome(const ConfigGenome &g, Random &rng,
             const GenomeBounds &bounds)
{
    ConfigGenome m = g;
    // The widened axes extend the gene range only when armed, so the
    // default bounds reproduce the historic rng.below(6) draw sequence.
    unsigned genes = 6;
    unsigned protocol_gene = 0, scope_gene = 0;
    if (bounds.searchProtocols)
        protocol_gene = genes++;
    if (bounds.searchScopes)
        scope_gene = genes++;
    unsigned gene = static_cast<unsigned>(rng.below(genes));
    bool up = rng.pct(50);
    if (bounds.searchProtocols && gene == protocol_gene) {
        m.protocol = g.protocol == ProtocolKind::Viper
                         ? ProtocolKind::Lrcc
                         : ProtocolKind::Viper;
        return m;
    }
    if (bounds.searchScopes && gene == scope_gene) {
        m.scopeMode = g.scopeMode == ScopeMode::None ? ScopeMode::Scoped
                                                     : ScopeMode::None;
        return m;
    }
    switch (gene) {
      case 0: {
        // Rotate to one of the two other cache classes.
        const CacheSizeClass classes[] = {CacheSizeClass::Small,
                                          CacheSizeClass::Large,
                                          CacheSizeClass::Mixed};
        unsigned cur = static_cast<unsigned>(g.cacheClass);
        m.cacheClass = classes[(cur + 1 + (up ? 1 : 0)) % 3];
        break;
      }
      case 1:
        m.actionsPerEpisode = step(g.actionsPerEpisode, up,
                                   bounds.minActions, bounds.maxActions);
        break;
      case 2:
        m.episodesPerWf =
            step(g.episodesPerWf, up, bounds.minEpisodesPerWf,
                 bounds.maxEpisodesPerWf);
        break;
      case 3:
        m.atomicLocs = step(g.atomicLocs, up, bounds.minAtomicLocs,
                            bounds.maxAtomicLocs);
        break;
      case 4: {
        bool dup = up;
        if (dup && g.colocDensity * 2 > bounds.maxColocDensity)
            dup = false;
        else if (!dup && g.colocDensity / 2 < bounds.minColocDensity)
            dup = true;
        m.colocDensity =
            std::clamp(dup ? g.colocDensity * 2 : g.colocDensity / 2,
                       bounds.minColocDensity, bounds.maxColocDensity);
        break;
      }
      case 5:
        m.numCus = step(g.numCus, up, bounds.minCus, bounds.maxCus);
        break;
    }
    return m;
}

} // namespace drf
