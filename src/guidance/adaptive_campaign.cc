#include "guidance/adaptive_campaign.hh"

#include <chrono>

#include "campaign/campaign_json.hh"

namespace drf
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** FNV-1a over the two unions' active-set digests. */
std::uint64_t
combinedDigest(const CoverageAccumulator &l1,
               const CoverageAccumulator &l2)
{
    if (l1.empty() && l2.empty())
        return 0;
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(l1.empty() ? 0 : l1.grid().activeDigest());
    mix(l2.empty() ? 0 : l2.grid().activeDigest());
    return h;
}

} // namespace

AdaptiveCampaignResult
runAdaptiveCampaign(ShardSource &source, const AdaptiveCampaignConfig &cfg)
{
    AdaptiveCampaignResult res;
    res.strategy = source.strategy();

    CoverageAccumulator l1;
    CoverageAccumulator l2;
    Clock::time_point start = Clock::now();

    for (;;) {
        std::vector<ShardSpec> batch = source.nextBatch();
        if (batch.empty())
            break;
        ++res.rounds;

        CampaignConfig batch_cfg;
        batch_cfg.jobs = cfg.jobs;
        batch_cfg.stopOnFailure = cfg.stopOnFailure;
        batch_cfg.coverageTestType = cfg.coverageTestType;
        batch_cfg.keepOutcomes = true;
        CampaignResult batch_res =
            runCampaign(std::move(batch), batch_cfg);
        res.jobs = batch_res.jobs;

        // Feedback strictly in shard-index order: outcomes is sorted,
        // so the source sees a thread-count-invariant stream.
        for (ShardOutcome &out : batch_res.outcomes) {
            ShardFeedback fb;
            fb.episodes = out.result.episodes;
            fb.actions = out.result.loadsChecked +
                         out.result.storesRetired +
                         out.result.atomicsChecked;
            if (out.l1)
                fb.newL1Cells = l1.add(*out.l1);
            if (out.l2)
                fb.newL2Cells = l2.add(*out.l2);
            fb.unionL1Active = l1.activeCount(cfg.coverageTestType);
            fb.unionL2Active = l2.activeCount(cfg.coverageTestType);
            fb.passed = out.result.passed;

            ++res.shardsRun;
            res.totalEpisodes += fb.episodes;
            res.totalActions += fb.actions;
            res.totalEvents += out.result.events;

            CoveragePoint point;
            point.shardsCompleted = res.shardsRun;
            point.l1Pct = l1.coveragePct(cfg.coverageTestType);
            point.l2Pct = l2.coveragePct(cfg.coverageTestType);
            point.cumulativeEvents = res.totalEvents;
            point.wallSeconds = secondsSince(start);
            point.shardName = out.name;
            point.shardSeed = out.seed;
            point.shardEpisodes = fb.episodes;
            point.shardActions = fb.actions;
            point.cumulativeEpisodes = res.totalEpisodes;
            point.cumulativeActions = res.totalActions;
            point.newCells = fb.newL1Cells + fb.newL2Cells;
            res.curve.push_back(std::move(point));

            if (!out.result.passed && !res.firstFailure) {
                res.firstFailure = ShardFailure{
                    out.name, out.seed, out.index, out.result.report};
                res.firstFailureClass = out.result.failureClass;
                res.failurePreset = source.presetForSeed(out.seed);
            }

            source.report(out, fb);
        }

        if (res.firstFailure && cfg.stopOnFailure)
            break;
        if (cfg.saturationPct > 0.0 && (!l1.empty() || !l2.empty()) &&
            (l1.empty() ||
             l1.coveragePct(cfg.coverageTestType) >= cfg.saturationPct) &&
            (l2.empty() ||
             l2.coveragePct(cfg.coverageTestType) >= cfg.saturationPct)) {
            break;
        }
    }

    res.passed = !res.firstFailure.has_value();
    res.wallSeconds = secondsSince(start);
    if (!l1.empty())
        res.l1Union = l1.grid();
    if (!l2.empty())
        res.l2Union = l2.grid();
    res.unionDigest = combinedDigest(l1, l2);

    if (auto *guided = dynamic_cast<GuidedSource *>(&source))
        res.decisions = guided->decisions();
    return res;
}

namespace
{

void
writeGenome(JsonWriter &w, const ConfigGenome &g)
{
    w.beginObject();
    w.key("cache_class").value(cacheSizeClassName(g.cacheClass));
    w.key("actions_per_episode").value(g.actionsPerEpisode);
    w.key("episodes_per_wf").value(g.episodesPerWf);
    w.key("atomic_locs").value(g.atomicLocs);
    w.key("coloc_density").value(g.colocDensity);
    w.key("num_cus").value(g.numCus);
    w.endObject();
}

void
writeDecisions(JsonWriter &w,
               const std::vector<GuidanceDecision> &decisions)
{
    w.beginArray();
    for (const GuidanceDecision &d : decisions) {
        w.beginObject();
        w.key("round").value(static_cast<std::uint64_t>(d.round));
        w.key("arm").value(static_cast<std::uint64_t>(d.arm));
        w.key("mutant").value(d.mutant);
        w.key("probe").value(d.probe);
        w.key("genome");
        writeGenome(w, d.genome);
        w.key("seeds").beginArray();
        for (std::uint64_t seed : d.seeds)
            w.value(seed);
        w.endArray();
        w.key("episodes").value(d.episodes);
        w.key("actions").value(d.actions);
        w.key("new_cells").value(static_cast<std::uint64_t>(d.newCells));
        w.key("reward_per_kiloepisode").value(d.rewardPerKiloEpisode);
        w.endObject();
    }
    w.endArray();
}

} // namespace

std::string
guidanceDecisionsJson(const std::vector<GuidanceDecision> &decisions)
{
    JsonWriter w;
    writeDecisions(w, decisions);
    return w.str();
}

std::string
adaptiveCampaignToJson(const AdaptiveCampaignResult &result,
                       const std::string &coverage_test_type)
{
    JsonWriter w;
    w.beginObject();
    w.key("strategy").value(strategyName(result.strategy));
    w.key("passed").value(result.passed);
    w.key("rounds").value(static_cast<std::uint64_t>(result.rounds));
    w.key("shards_run")
        .value(static_cast<std::uint64_t>(result.shardsRun));
    w.key("jobs").value(result.jobs);
    w.key("total_episodes").value(result.totalEpisodes);
    w.key("total_actions").value(result.totalActions);
    w.key("total_events").value(result.totalEvents);
    w.key("wall_seconds").value(result.wallSeconds);

    w.key("l1_union_pct");
    if (result.l1Union)
        w.value(result.l1Union->coveragePct(coverage_test_type));
    else
        w.nullValue();
    w.key("l2_union_pct");
    if (result.l2Union)
        w.value(result.l2Union->coveragePct(coverage_test_type));
    else
        w.nullValue();
    w.key("l1_union_active");
    if (result.l1Union)
        w.value(static_cast<std::uint64_t>(
            result.l1Union->activeCount(coverage_test_type)));
    else
        w.nullValue();
    w.key("l2_union_active");
    if (result.l2Union)
        w.value(static_cast<std::uint64_t>(
            result.l2Union->activeCount(coverage_test_type)));
    else
        w.nullValue();

    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(result.unionDigest));
    w.key("union_digest").value(digest);

    w.key("first_failure");
    if (result.firstFailure) {
        w.beginObject();
        w.key("name").value(result.firstFailure->name);
        w.key("seed").value(result.firstFailure->seed);
        w.key("failure_class")
            .value(failureClassName(result.firstFailureClass));
        w.key("report").value(result.firstFailure->report);
        w.endObject();
    } else {
        w.nullValue();
    }

    w.key("curve").beginArray();
    for (const CoveragePoint &p : result.curve) {
        w.beginObject();
        w.key("shards")
            .value(static_cast<std::uint64_t>(p.shardsCompleted));
        w.key("shard_name").value(p.shardName);
        w.key("shard_seed").value(p.shardSeed);
        w.key("shard_episodes").value(p.shardEpisodes);
        w.key("shard_actions").value(p.shardActions);
        w.key("cumulative_episodes").value(p.cumulativeEpisodes);
        w.key("cumulative_actions").value(p.cumulativeActions);
        w.key("new_cells").value(static_cast<std::uint64_t>(p.newCells));
        w.key("l1_pct").value(p.l1Pct);
        w.key("l2_pct").value(p.l2Pct);
        w.endObject();
    }
    w.endArray();

    w.key("guidance");
    if (result.strategy == Strategy::Guided)
        writeDecisions(w, result.decisions);
    else
        w.nullValue();

    w.endObject();
    return w.str();
}

} // namespace drf
