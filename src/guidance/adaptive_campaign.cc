#include "guidance/adaptive_campaign.hh"

#include <chrono>

#include "campaign/campaign_json.hh"

namespace drf
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** FNV-1a over the two unions' active-set digests. */
std::uint64_t
combinedDigest(const CoverageAccumulator &l1,
               const CoverageAccumulator &l2)
{
    if (l1.empty() && l2.empty())
        return 0;
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(l1.empty() ? 0 : l1.grid().activeDigest());
    mix(l2.empty() ? 0 : l2.grid().activeDigest());
    return h;
}

} // namespace

FeedbackLoop::FeedbackLoop(ShardSource &source,
                           const AdaptiveCampaignConfig &cfg)
    : _source(source), _cfg(cfg)
{
    _res.strategy = source.strategy();
}

void
FeedbackLoop::beginRound()
{
    ++_res.rounds;
}

void
FeedbackLoop::onOutcome(const ShardOutcome &out, double wall_seconds)
{
    ShardFeedback fb;
    fb.episodes = out.result.episodes;
    fb.actions = out.result.loadsChecked + out.result.storesRetired +
                 out.result.atomicsChecked;
    if (out.l1)
        fb.newL1Cells = _l1.add(*out.l1);
    if (out.l2)
        fb.newL2Cells = _l2.add(*out.l2);
    fb.unionL1Active = _l1.activeCount(_cfg.coverageTestType);
    fb.unionL2Active = _l2.activeCount(_cfg.coverageTestType);
    fb.passed = out.result.passed;

    ++_res.shardsRun;
    _res.totalEpisodes += fb.episodes;
    _res.totalActions += fb.actions;
    _res.totalEvents += out.result.events;

    CoveragePoint point;
    point.shardsCompleted = _res.shardsRun;
    point.l1Pct = _l1.coveragePct(_cfg.coverageTestType);
    point.l2Pct = _l2.coveragePct(_cfg.coverageTestType);
    point.cumulativeEvents = _res.totalEvents;
    point.wallSeconds = wall_seconds;
    point.shardName = out.name;
    point.shardSeed = out.seed;
    point.shardEpisodes = fb.episodes;
    point.shardActions = fb.actions;
    point.cumulativeEpisodes = _res.totalEpisodes;
    point.cumulativeActions = _res.totalActions;
    point.newCells = fb.newL1Cells + fb.newL2Cells;
    _res.curve.push_back(std::move(point));

    if (!out.result.passed && !_res.firstFailure) {
        _res.firstFailure = ShardFailure{out.name, out.seed, out.index,
                                         out.result.report};
        _res.firstFailureClass = out.result.failureClass;
        _res.failurePreset = _source.presetForSeed(out.seed);
    }

    _source.report(out, fb);
}

bool
FeedbackLoop::stopRequested() const
{
    if (_res.firstFailure && _cfg.stopOnFailure)
        return true;
    if (_cfg.saturationPct > 0.0 && (!_l1.empty() || !_l2.empty()) &&
        (_l1.empty() || _l1.coveragePct(_cfg.coverageTestType) >=
                            _cfg.saturationPct) &&
        (_l2.empty() || _l2.coveragePct(_cfg.coverageTestType) >=
                            _cfg.saturationPct)) {
        return true;
    }
    return false;
}

AdaptiveCampaignResult
FeedbackLoop::take(double wall_seconds, unsigned jobs)
{
    _res.passed = !_res.firstFailure.has_value();
    _res.wallSeconds = wall_seconds;
    _res.jobs = jobs;
    if (!_l1.empty())
        _res.l1Union = _l1.grid();
    if (!_l2.empty())
        _res.l2Union = _l2.grid();
    _res.unionDigest = combinedDigest(_l1, _l2);
    if (auto *guided = dynamic_cast<GuidedSource *>(&_source))
        _res.decisions = guided->decisions();
    _res.predictTriage = _source.predictTriage();
    return std::move(_res);
}

AdaptiveCampaignResult
runAdaptiveCampaign(ShardSource &source, const AdaptiveCampaignConfig &cfg)
{
    FeedbackLoop loop(source, cfg);
    unsigned jobs = 0;
    Clock::time_point start = Clock::now();

    for (;;) {
        std::vector<ShardSpec> batch = source.nextBatch();
        if (batch.empty())
            break;
        loop.beginRound();

        CampaignConfig batch_cfg;
        batch_cfg.jobs = cfg.jobs;
        batch_cfg.stopOnFailure = cfg.stopOnFailure;
        batch_cfg.coverageTestType = cfg.coverageTestType;
        batch_cfg.keepOutcomes = true;
        CampaignResult batch_res =
            runCampaign(std::move(batch), batch_cfg);
        jobs = batch_res.jobs;

        // Feedback strictly in shard-index order: outcomes is sorted,
        // so the source sees a thread-count-invariant stream.
        for (ShardOutcome &out : batch_res.outcomes)
            loop.onOutcome(out, secondsSince(start));

        if (loop.stopRequested())
            break;
    }

    return loop.take(secondsSince(start), jobs);
}

namespace
{

void
writeGenome(JsonWriter &w, const ConfigGenome &g)
{
    w.beginObject();
    w.key("cache_class").value(cacheSizeClassName(g.cacheClass));
    w.key("actions_per_episode").value(g.actionsPerEpisode);
    w.key("episodes_per_wf").value(g.episodesPerWf);
    w.key("atomic_locs").value(g.atomicLocs);
    w.key("coloc_density").value(g.colocDensity);
    w.key("num_cus").value(g.numCus);
    w.key("protocol").value(protocolKindName(g.protocol));
    w.key("scope_mode").value(scopeModeName(g.scopeMode));
    w.endObject();
}

void
writeDecisions(JsonWriter &w,
               const std::vector<GuidanceDecision> &decisions)
{
    w.beginArray();
    for (const GuidanceDecision &d : decisions) {
        w.beginObject();
        w.key("round").value(static_cast<std::uint64_t>(d.round));
        w.key("arm").value(static_cast<std::uint64_t>(d.arm));
        w.key("mutant").value(d.mutant);
        w.key("probe").value(d.probe);
        w.key("genome");
        writeGenome(w, d.genome);
        w.key("seeds").beginArray();
        for (std::uint64_t seed : d.seeds)
            w.value(seed);
        w.endArray();
        w.key("episodes").value(d.episodes);
        w.key("actions").value(d.actions);
        w.key("new_cells").value(static_cast<std::uint64_t>(d.newCells));
        w.key("reward_per_kiloepisode").value(d.rewardPerKiloEpisode);
        w.endObject();
    }
    w.endArray();
}

} // namespace

std::string
guidanceDecisionsJson(const std::vector<GuidanceDecision> &decisions)
{
    JsonWriter w;
    writeDecisions(w, decisions);
    return w.str();
}

namespace
{

/**
 * Shared body of the two summary serializers. @p volatile_fields adds
 * the per-run fields (worker count, wall clock) that the deterministic
 * aggregate subset must exclude.
 */
std::string
writeCampaignJson(const AdaptiveCampaignResult &result,
                  const std::string &coverage_test_type,
                  bool volatile_fields)
{
    JsonWriter w;
    w.beginObject();
    w.key("strategy").value(strategyName(result.strategy));
    w.key("passed").value(result.passed);
    w.key("rounds").value(static_cast<std::uint64_t>(result.rounds));
    w.key("shards_run")
        .value(static_cast<std::uint64_t>(result.shardsRun));
    if (volatile_fields)
        w.key("jobs").value(result.jobs);
    w.key("total_episodes").value(result.totalEpisodes);
    w.key("total_actions").value(result.totalActions);
    w.key("total_events").value(result.totalEvents);
    if (volatile_fields)
        w.key("wall_seconds").value(result.wallSeconds);

    w.key("l1_union_pct");
    if (result.l1Union)
        w.value(result.l1Union->coveragePct(coverage_test_type));
    else
        w.nullValue();
    w.key("l2_union_pct");
    if (result.l2Union)
        w.value(result.l2Union->coveragePct(coverage_test_type));
    else
        w.nullValue();
    w.key("l1_union_active");
    if (result.l1Union)
        w.value(static_cast<std::uint64_t>(
            result.l1Union->activeCount(coverage_test_type)));
    else
        w.nullValue();
    w.key("l2_union_active");
    if (result.l2Union)
        w.value(static_cast<std::uint64_t>(
            result.l2Union->activeCount(coverage_test_type)));
    else
        w.nullValue();

    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(result.unionDigest));
    w.key("union_digest").value(digest);

    w.key("first_failure");
    if (result.firstFailure) {
        w.beginObject();
        w.key("name").value(result.firstFailure->name);
        w.key("seed").value(result.firstFailure->seed);
        w.key("failure_class")
            .value(failureClassName(result.firstFailureClass));
        w.key("report").value(result.firstFailure->report);
        w.endObject();
    } else {
        w.nullValue();
    }

    w.key("curve").beginArray();
    for (const CoveragePoint &p : result.curve) {
        w.beginObject();
        w.key("shards")
            .value(static_cast<std::uint64_t>(p.shardsCompleted));
        w.key("shard_name").value(p.shardName);
        w.key("shard_seed").value(p.shardSeed);
        w.key("shard_episodes").value(p.shardEpisodes);
        w.key("shard_actions").value(p.shardActions);
        w.key("cumulative_episodes").value(p.cumulativeEpisodes);
        w.key("cumulative_actions").value(p.cumulativeActions);
        w.key("new_cells").value(static_cast<std::uint64_t>(p.newCells));
        w.key("l1_pct").value(p.l1Pct);
        w.key("l2_pct").value(p.l2Pct);
        w.endObject();
    }
    w.endArray();

    w.key("guidance");
    if (result.strategy == Strategy::Guided)
        writeDecisions(w, result.decisions);
    else
        w.nullValue();

    // Always present (zeros for strategies without a predictive pass)
    // so aggregate strings stay structurally identical across
    // strategies — the fleet byte-compare tests rely on that.
    const PredictTriage triage =
        result.predictTriage.value_or(PredictTriage{});
    w.key("predicted_races").beginObject();
    w.key("candidates")
        .value(static_cast<std::uint64_t>(triage.candidates));
    w.key("confirmed")
        .value(static_cast<std::uint64_t>(triage.confirmed));
    w.key("demoted").value(static_cast<std::uint64_t>(triage.demoted));
    w.key("interleavings")
        .value(static_cast<std::uint64_t>(triage.interleavings));
    w.key("first_pair");
    if (triage.firstPair.empty())
        w.nullValue();
    else
        w.value(triage.firstPair);
    w.endObject();

    w.endObject();
    return w.str();
}

} // namespace

std::string
adaptiveCampaignToJson(const AdaptiveCampaignResult &result,
                       const std::string &coverage_test_type)
{
    return writeCampaignJson(result, coverage_test_type,
                             /*volatile_fields=*/true);
}

std::string
adaptiveAggregatesJson(const AdaptiveCampaignResult &result,
                       const std::string &coverage_test_type)
{
    return writeCampaignJson(result, coverage_test_type,
                             /*volatile_fields=*/false);
}

} // namespace drf
