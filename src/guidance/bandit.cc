#include "guidance/bandit.hh"

#include <cassert>
#include <cmath>

namespace drf
{

double
Ucb1Bandit::mean(std::size_t arm) const
{
    const Arm &a = _arms[arm];
    return a.plays == 0 ? 0.0
                        : a.rewardSum / static_cast<double>(a.plays);
}

double
Ucb1Bandit::ucbScore(std::size_t arm) const
{
    const Arm &a = _arms[arm];
    assert(a.plays > 0 && _totalPlays > 0);
    double scale = _rewardScale > 0.0 ? _rewardScale : 1.0;
    double bonus = _exploration * scale *
                   std::sqrt(std::log(static_cast<double>(_totalPlays)) /
                             static_cast<double>(a.plays));
    return mean(arm) + bonus;
}

std::size_t
Ucb1Bandit::select() const
{
    assert(!_arms.empty());
    for (std::size_t i = 0; i < _arms.size(); ++i) {
        if (_arms[i].plays == 0)
            return i;
    }
    std::size_t best = 0;
    double best_score = ucbScore(0);
    for (std::size_t i = 1; i < _arms.size(); ++i) {
        double score = ucbScore(i);
        if (score > best_score) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

void
Ucb1Bandit::update(std::size_t arm, double reward)
{
    Arm &a = _arms[arm];
    ++a.plays;
    a.rewardSum += reward;
    ++_totalPlays;
    if (reward > _rewardScale)
        _rewardScale = reward;
}

} // namespace drf
