/**
 * @file
 * Config genomes: the search space of the coverage-guided scheduler.
 *
 * A ConfigGenome is the compact, mutable description of one GPU tester
 * configuration — exactly the Table III axes (cache-size class,
 * actions/episode, episodes/WF, atomic locations) plus the two knobs
 * the sweep holds fixed but that matter for reaching the Inact tail:
 * the variable→line co-location density and the CU count. Everything
 * else (lanes, wavefronts per CU, normal-variable count, an armed
 * fault) is shared campaign-wide in a GenomeScale.
 *
 * genomeToPreset() is the one mapping from genome to a runnable
 * GpuTestPreset; genomeFromPreset() inverts it for seeding the bandit
 * arms from the Table III sweep. mutateGenome() applies one bounded,
 * seeded mutation step, so a guided campaign's mutation sequence is a
 * pure function of its master seed.
 */

#ifndef DRF_GUIDANCE_GENOME_HH
#define DRF_GUIDANCE_GENOME_HH

#include <cstdint>
#include <string>

#include "mem/scope.hh"
#include "proto/fault.hh"
#include "proto/protocol_kind.hh"
#include "sim/random.hh"
#include "tester/configs.hh"

namespace drf
{

/** The heritable axes of one GPU tester configuration. */
struct ConfigGenome
{
    CacheSizeClass cacheClass = CacheSizeClass::Small;
    unsigned actionsPerEpisode = 100;
    unsigned episodesPerWf = 10;
    unsigned atomicLocs = 10;

    /**
     * Target expected variables per cache line (drives the mapped
     * address range; higher = more induced false sharing).
     */
    double colocDensity = 2.0;

    unsigned numCus = 8;

    /** GPU L1 coherence protocol variant (a table pick, see src/proto). */
    ProtocolKind protocol = ProtocolKind::Viper;

    /**
     * Scoped-synchronization mode of the generated episodes. Only None
     * and Scoped appear in the search space (Racy is the deliberate
     * negative arm, reserved for fuzzing — a racy genome would flood
     * the campaign with expected failures).
     */
    ScopeMode scopeMode = ScopeMode::None;

    bool operator==(const ConfigGenome &o) const
    {
        return cacheClass == o.cacheClass &&
               actionsPerEpisode == o.actionsPerEpisode &&
               episodesPerWf == o.episodesPerWf &&
               atomicLocs == o.atomicLocs &&
               colocDensity == o.colocDensity && numCus == o.numCus &&
               protocol == o.protocol && scopeMode == o.scopeMode;
    }
    bool operator!=(const ConfigGenome &o) const { return !(*this == o); }
};

/** Mutation / search bounds, inclusive. */
struct GenomeBounds
{
    unsigned minActions = 10, maxActions = 400;
    unsigned minEpisodesPerWf = 2, maxEpisodesPerWf = 200;
    unsigned minAtomicLocs = 4, maxAtomicLocs = 400;
    double minColocDensity = 0.25, maxColocDensity = 8.0;
    unsigned minCus = 2, maxCus = 16;

    /**
     * Widened-space opt-ins. Both default off so existing campaigns'
     * mutation sequences (a pure function of the master seed) are
     * unchanged; a protocol/scope campaign arms them explicitly.
     */
    bool searchProtocols = false; ///< mutate ConfigGenome::protocol
    bool searchScopes = false;    ///< mutate None <-> Scoped
};

/** Campaign-wide knobs a genome does not search over. */
struct GenomeScale
{
    unsigned lanes = 16;
    unsigned wfsPerCu = 2;
    std::uint32_t numNormalVars = 4096;

    /** Armed protocol bug for fault-injection campaigns. */
    FaultKind fault = FaultKind::None;
    unsigned faultTriggerPct = 100;
};

/**
 * Address range realizing ~@p density expected variables per
 * @p line_bytes cache line for @p num_vars variables, clamped so the
 * random mapping always has at least 2x slot headroom.
 */
std::uint64_t addrRangeForDensity(std::uint32_t num_vars, double density,
                                  unsigned line_bytes = 64,
                                  unsigned var_bytes = 4);

/** Expected variables per line of an existing variable-map config. */
double colocDensityOf(const VariableMapConfig &cfg);

/** Short stable identifier, e.g. "small/a100/e10/s10/d2/cu8". */
std::string genomeName(const ConfigGenome &g);

/** The one genome → runnable preset mapping. */
GpuTestPreset genomeToPreset(const ConfigGenome &g,
                             const GenomeScale &scale,
                             std::uint64_t seed);

/** Inverse of genomeToPreset over the searched axes. */
ConfigGenome genomeFromPreset(const GpuTestPreset &preset);

/**
 * One bounded mutation step: pick one gene and one direction with
 * @p rng, halve/double (or rotate, for the cache class) within
 * @p bounds, reflecting off a bound instead of saturating at it.
 */
ConfigGenome mutateGenome(const ConfigGenome &g, Random &rng,
                          const GenomeBounds &bounds = {});

} // namespace drf

#endif // DRF_GUIDANCE_GENOME_HH
