/**
 * @file
 * Coherence state-transition coverage instrumentation.
 *
 * Every protocol controller owns a CoverageGrid over its (event, state)
 * space and reports each transition it takes. The evaluation classifies
 * cells the way the paper's Fig. 7 does:
 *
 *  - Undef:  no transition is defined from the state via the event; if it
 *            fires anyway the protocol implementation is faulty.
 *  - Active: a defined transition that was observed during testing.
 *  - Inact:  a defined transition never observed.
 *  - Impsb:  a defined transition unreachable for a given test type
 *            (e.g., PrbInv at the GPU L2 when only the GPU tester runs).
 *
 * Coverage = Active / (Defined - Impsb), computed over "reachable"
 * transitions exactly as in Section IV.B.
 */

#ifndef DRF_COVERAGE_COVERAGE_HH
#define DRF_COVERAGE_COVERAGE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace drf
{

/** Classification of one (event, state) cell for reporting. */
enum class CellClass
{
    Undef,
    Inact,
    Active,
    Impsb,
};

/** Printable name of a cell class. */
const char *cellClassName(CellClass c);

/**
 * Static description of a controller's transition space: state names,
 * event names, which cells are defined, and named sets of cells that are
 * unreachable under particular test types.
 */
class TransitionSpec
{
  public:
    TransitionSpec(std::string controller_name,
                   std::vector<std::string> states,
                   std::vector<std::string> events);

    const std::string &name() const { return _name; }
    const std::vector<std::string> &states() const { return _states; }
    const std::vector<std::string> &events() const { return _events; }

    std::size_t numStates() const { return _states.size(); }
    std::size_t numEvents() const { return _events.size(); }
    std::size_t numCells() const { return _states.size() * _events.size(); }

    /** Flat cell index for (event, state). */
    std::size_t
    cell(std::size_t event, std::size_t state) const
    {
        return event * _states.size() + state;
    }

    /** Declare (event, state) as a defined transition. */
    void define(std::size_t event, std::size_t state);

    /** True if the cell has a defined transition. */
    bool defined(std::size_t event, std::size_t state) const;

    /** Total number of defined cells. */
    std::size_t definedCount() const;

    /**
     * Mark (event, state) unreachable under test type @p test_type
     * (e.g. "gpu_tester", "cpu_tester").
     */
    void markImpossible(const std::string &test_type, std::size_t event,
                        std::size_t state);

    /** True if the cell is unreachable under @p test_type. */
    bool impossible(const std::string &test_type, std::size_t event,
                    std::size_t state) const;

    /** Number of impossible cells under @p test_type. */
    std::size_t impossibleCount(const std::string &test_type) const;

    /** Defined minus impossible: the reachable-transition count. */
    std::size_t reachableCount(const std::string &test_type) const;

    /** Look up a state index by name. Asserts on unknown names. */
    std::size_t stateIndex(const std::string &state_name) const;

    /** Look up an event index by name. Asserts on unknown names. */
    std::size_t eventIndex(const std::string &event_name) const;

  private:
    std::string _name;
    std::vector<std::string> _states;
    std::vector<std::string> _events;
    std::vector<bool> _defined;
    std::map<std::string, std::set<std::size_t>> _impossibleSets;
};

/**
 * Hit counts over one controller's transition space.
 */
class CoverageGrid
{
  public:
    explicit CoverageGrid(const TransitionSpec &spec);

    const TransitionSpec &spec() const { return *_spec; }

    /** Record one activation of (event, state). */
    void hit(std::size_t event, std::size_t state);

    /** Hit count of one cell. */
    std::uint64_t count(std::size_t event, std::size_t state) const;

    /**
     * Overwrite one cell's hit count, adjusting totalHits by the delta.
     * Deserialization hook: the campaign journal and the fork-isolation
     * pipe rebuild shard grids cell-by-cell (src/campaign/journal.cc);
     * exact counts — not just the active set — keep resumed aggregates
     * bit-identical to an uninterrupted run.
     */
    void setCount(std::size_t event, std::size_t state,
                  std::uint64_t count);

    /** Total transition activations recorded. */
    std::uint64_t totalHits() const { return _totalHits; }

    /**
     * Merge another grid over the same spec (union coverage).
     *
     * Not internally synchronized: when grids produced by parallel
     * campaign shards are merged, the caller serializes the merges (the
     * campaign runner holds its results mutex; see src/campaign/).
     */
    void merge(const CoverageGrid &other);

    /**
     * Number of cells active in @p other but not (yet) in this grid —
     * the coverage @p other would add if merged. This is the
     * feedback-directed generator's reward primitive (newly covered
     * cells per episode; see src/guidance/).
     */
    std::size_t newlyCovered(const CoverageGrid &other) const;

    /**
     * Set difference of active cells: a grid (over the same spec) with
     * one hit in every cell active in this grid but not in @p other.
     */
    CoverageGrid diff(const CoverageGrid &other) const;

    /**
     * Order-independent digest of the *active cell set* (spec shape +
     * which cells have a nonzero count; hit magnitudes are ignored).
     * Two unions covering the same cells digest identically even when
     * their hit counts differ.
     */
    std::uint64_t activeDigest() const;

    /** Forget all hits. */
    void reset();

    /** Classify one cell under a test type ("" = nothing impossible). */
    CellClass classify(std::size_t event, std::size_t state,
                       const std::string &test_type = "") const;

    /** Number of Active cells under @p test_type. */
    std::size_t activeCount(const std::string &test_type = "") const;

    /**
     * Transition coverage in percent: Active / (Defined - Impsb) * 100.
     */
    double coveragePct(const std::string &test_type = "") const;

    /**
     * Render a Fig. 5-style heat map: rows are events, columns states,
     * shading by log10 of the hit count.
     */
    void renderHeatMap(std::ostream &os) const;

    /**
     * Render a Fig. 7-style classification map using one letter per cell:
     * 'U'ndef, 'A'ctive, '.' inactive, 'X' impossible.
     */
    void renderClassMap(std::ostream &os,
                        const std::string &test_type = "") const;

  private:
    const TransitionSpec *_spec;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _totalHits = 0;
};

/**
 * Incremental union of coverage grids that adopts its spec from the
 * first grid added. This is the one way union coverage is built
 * everywhere — the per-system L1/L2 union helpers, the figure benches,
 * and the campaign runner's cross-shard merge all funnel through it —
 * so "empty grid + merge loop" is written exactly once.
 */
class CoverageAccumulator
{
  public:
    CoverageAccumulator() = default;

    /**
     * Merge @p grid into the union of its spec. Grids over *different*
     * specs (e.g. the VIPER and LRCC variants of the L1 in a
     * mixed-protocol campaign) accumulate into separate per-spec
     * unions, keyed by spec name, so merging never crosses protocol
     * boundaries.
     *
     * @return the number of cells @p grid newly covered — active in it
     *         but not in its spec's union before the merge.
     */
    std::size_t add(const CoverageGrid &grid);

    /** True until the first add(). */
    bool empty() const { return _unions.empty(); }

    /**
     * The primary accumulated union (the first spec seen). @pre
     * !empty(). Single-protocol campaigns — the common case — only ever
     * have this one.
     */
    const CoverageGrid &grid() const;

    /** Union for one spec name; nullptr if that spec was never added. */
    const CoverageGrid *gridFor(const std::string &spec_name) const;

    /** All per-spec unions, in first-adoption order. */
    const std::vector<CoverageGrid> &grids() const { return _unions; }

    /**
     * Coverage percentage aggregated over every spec union (active
     * cells over reachable cells, summed before dividing); 0 while
     * empty.
     */
    double coveragePct(const std::string &test_type = "") const;

    /** Active-cell count summed over every spec union; 0 while empty. */
    std::size_t activeCount(const std::string &test_type = "") const;

  private:
    std::vector<CoverageGrid> _unions;
};

} // namespace drf

#endif // DRF_COVERAGE_COVERAGE_HH
