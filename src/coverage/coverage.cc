#include "coverage/coverage.hh"

#include <cassert>
#include <cmath>
#include <iomanip>

namespace drf
{

const char *
cellClassName(CellClass c)
{
    switch (c) {
      case CellClass::Undef: return "Undef";
      case CellClass::Inact: return "Inact";
      case CellClass::Active: return "Active";
      case CellClass::Impsb: return "Impsb";
    }
    return "?";
}

TransitionSpec::TransitionSpec(std::string controller_name,
                               std::vector<std::string> states,
                               std::vector<std::string> events)
    : _name(std::move(controller_name)), _states(std::move(states)),
      _events(std::move(events)),
      _defined(_states.size() * _events.size(), false)
{
}

void
TransitionSpec::define(std::size_t event, std::size_t state)
{
    _defined[cell(event, state)] = true;
}

bool
TransitionSpec::defined(std::size_t event, std::size_t state) const
{
    return _defined[cell(event, state)];
}

std::size_t
TransitionSpec::definedCount() const
{
    std::size_t count = 0;
    for (bool d : _defined)
        count += d ? 1 : 0;
    return count;
}

void
TransitionSpec::markImpossible(const std::string &test_type,
                               std::size_t event, std::size_t state)
{
    assert(defined(event, state) &&
           "only defined transitions can be marked impossible");
    _impossibleSets[test_type].insert(cell(event, state));
}

bool
TransitionSpec::impossible(const std::string &test_type, std::size_t event,
                           std::size_t state) const
{
    auto it = _impossibleSets.find(test_type);
    if (it == _impossibleSets.end())
        return false;
    return it->second.count(cell(event, state)) > 0;
}

std::size_t
TransitionSpec::impossibleCount(const std::string &test_type) const
{
    auto it = _impossibleSets.find(test_type);
    return it == _impossibleSets.end() ? 0 : it->second.size();
}

std::size_t
TransitionSpec::reachableCount(const std::string &test_type) const
{
    return definedCount() - impossibleCount(test_type);
}

std::size_t
TransitionSpec::stateIndex(const std::string &state_name) const
{
    for (std::size_t i = 0; i < _states.size(); ++i) {
        if (_states[i] == state_name)
            return i;
    }
    assert(false && "unknown state name");
    return 0;
}

std::size_t
TransitionSpec::eventIndex(const std::string &event_name) const
{
    for (std::size_t i = 0; i < _events.size(); ++i) {
        if (_events[i] == event_name)
            return i;
    }
    assert(false && "unknown event name");
    return 0;
}

CoverageGrid::CoverageGrid(const TransitionSpec &spec)
    : _spec(&spec), _counts(spec.numCells(), 0)
{
}

void
CoverageGrid::hit(std::size_t event, std::size_t state)
{
    ++_counts[_spec->cell(event, state)];
    ++_totalHits;
}

std::uint64_t
CoverageGrid::count(std::size_t event, std::size_t state) const
{
    return _counts[_spec->cell(event, state)];
}

void
CoverageGrid::setCount(std::size_t event, std::size_t state,
                       std::uint64_t count)
{
    std::uint64_t &slot = _counts[_spec->cell(event, state)];
    _totalHits += count - slot;
    slot = count;
}

void
CoverageGrid::merge(const CoverageGrid &other)
{
    assert(_spec == other._spec && "merging grids over different specs");
    for (std::size_t i = 0; i < _counts.size(); ++i)
        _counts[i] += other._counts[i];
    _totalHits += other._totalHits;
}

std::size_t
CoverageGrid::newlyCovered(const CoverageGrid &other) const
{
    assert(_spec == other._spec &&
           "comparing grids over different specs");
    std::size_t fresh = 0;
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (other._counts[i] > 0 && _counts[i] == 0)
            ++fresh;
    }
    return fresh;
}

CoverageGrid
CoverageGrid::diff(const CoverageGrid &other) const
{
    assert(_spec == other._spec &&
           "diffing grids over different specs");
    CoverageGrid result(*_spec);
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (_counts[i] > 0 && other._counts[i] == 0) {
            result._counts[i] = 1;
            ++result._totalHits;
        }
    }
    return result;
}

std::uint64_t
CoverageGrid::activeDigest() const
{
    // FNV-1a over the spec shape and the active-cell bitset.
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(_spec->numEvents());
    mix(_spec->numStates());
    for (std::size_t i = 0; i < _counts.size(); ++i)
        mix(_counts[i] > 0 ? 1 : 0);
    return h;
}

void
CoverageGrid::reset()
{
    _counts.assign(_counts.size(), 0);
    _totalHits = 0;
}

CellClass
CoverageGrid::classify(std::size_t event, std::size_t state,
                       const std::string &test_type) const
{
    if (!_spec->defined(event, state))
        return CellClass::Undef;
    if (_spec->impossible(test_type, event, state))
        return CellClass::Impsb;
    if (count(event, state) > 0)
        return CellClass::Active;
    return CellClass::Inact;
}

std::size_t
CoverageGrid::activeCount(const std::string &test_type) const
{
    std::size_t active = 0;
    for (std::size_t e = 0; e < _spec->numEvents(); ++e) {
        for (std::size_t s = 0; s < _spec->numStates(); ++s) {
            if (classify(e, s, test_type) == CellClass::Active)
                ++active;
        }
    }
    return active;
}

double
CoverageGrid::coveragePct(const std::string &test_type) const
{
    std::size_t reachable = _spec->reachableCount(test_type);
    if (reachable == 0)
        return 0.0;
    return 100.0 * static_cast<double>(activeCount(test_type)) /
           static_cast<double>(reachable);
}

namespace
{

/** Shade character by log10 of the count. */
char
shade(std::uint64_t count)
{
    if (count == 0)
        return ' ';
    double mag = std::log10(static_cast<double>(count));
    static const char levels[] = {'.', ':', '+', '*', '#', '@'};
    int idx = static_cast<int>(mag);
    if (idx < 0)
        idx = 0;
    if (idx > 5)
        idx = 5;
    return levels[idx];
}

std::size_t
maxEventNameWidth(const TransitionSpec &spec)
{
    std::size_t width = 0;
    for (const auto &e : spec.events())
        width = std::max(width, e.size());
    return width;
}

} // namespace

void
CoverageGrid::renderHeatMap(std::ostream &os) const
{
    const auto &spec = *_spec;
    std::size_t label_w = maxEventNameWidth(spec);

    os << spec.name() << " transition hit frequency "
       << "(blank=0  .=1+  :=10+  +=100+  *=1k+  #=10k+  @=100k+  "
       << "U=undefined)\n";
    os << std::string(label_w, ' ') << " |";
    for (const auto &state : spec.states())
        os << " " << std::setw(5) << state << " |";
    os << "\n";

    for (std::size_t e = 0; e < spec.numEvents(); ++e) {
        os << std::setw(static_cast<int>(label_w)) << spec.events()[e]
           << " |";
        for (std::size_t s = 0; s < spec.numStates(); ++s) {
            char c = spec.defined(e, s) ? shade(count(e, s)) : 'U';
            os << "   " << c << "   |";
        }
        os << "\n";
    }
}

std::size_t
CoverageAccumulator::add(const CoverageGrid &grid)
{
    for (CoverageGrid &u : _unions) {
        if (u.spec().name() == grid.spec().name()) {
            std::size_t fresh = u.newlyCovered(grid);
            u.merge(grid);
            return fresh;
        }
    }
    _unions.emplace_back(grid.spec());
    CoverageGrid &u = _unions.back();
    std::size_t fresh = u.newlyCovered(grid);
    u.merge(grid);
    return fresh;
}

const CoverageGrid &
CoverageAccumulator::grid() const
{
    assert(!_unions.empty() && "empty coverage accumulator");
    return _unions.front();
}

const CoverageGrid *
CoverageAccumulator::gridFor(const std::string &spec_name) const
{
    for (const CoverageGrid &u : _unions) {
        if (u.spec().name() == spec_name)
            return &u;
    }
    return nullptr;
}

double
CoverageAccumulator::coveragePct(const std::string &test_type) const
{
    std::size_t active = 0, reachable = 0;
    for (const CoverageGrid &u : _unions) {
        active += u.activeCount(test_type);
        reachable += u.spec().reachableCount(test_type);
    }
    if (reachable == 0)
        return 0.0;
    return 100.0 * static_cast<double>(active) /
           static_cast<double>(reachable);
}

std::size_t
CoverageAccumulator::activeCount(const std::string &test_type) const
{
    std::size_t active = 0;
    for (const CoverageGrid &u : _unions)
        active += u.activeCount(test_type);
    return active;
}

void
CoverageGrid::renderClassMap(std::ostream &os,
                             const std::string &test_type) const
{
    const auto &spec = *_spec;
    std::size_t label_w = maxEventNameWidth(spec);

    os << spec.name()
       << " transition classes (A=active  .=inactive  U=undefined  "
       << "X=impossible)\n";
    os << std::string(label_w, ' ') << " |";
    for (const auto &state : spec.states())
        os << " " << std::setw(5) << state << " |";
    os << "\n";

    for (std::size_t e = 0; e < spec.numEvents(); ++e) {
        os << std::setw(static_cast<int>(label_w)) << spec.events()[e]
           << " |";
        for (std::size_t s = 0; s < spec.numStates(); ++s) {
            char c = '?';
            switch (classify(e, s, test_type)) {
              case CellClass::Undef: c = 'U'; break;
              case CellClass::Inact: c = '.'; break;
              case CellClass::Active: c = 'A'; break;
              case CellClass::Impsb: c = 'X'; break;
            }
            os << "   " << c << "   |";
        }
        os << "\n";
    }
}

} // namespace drf
