/**
 * @file
 * Resilient campaign supervision: shard isolation, hang/crash triage,
 * bounded retry, and checkpoint/resume.
 *
 * runCampaign (campaign.hh) assumes every shard is a well-behaved
 * function. The supervisor drops that assumption and makes each shard a
 * fault-contained unit, so a campaign left running unattended for hours
 * survives anything a single shard does to its host:
 *
 *  - Isolation. Every attempt runs under an exception barrier that
 *    turns an uncaught throw into FailureClass::HostCrash and
 *    std::bad_alloc into ResourceExhausted. With forkIsolation (POSIX),
 *    the attempt runs in a forked child that reports its outcome over a
 *    pipe using the journal line format — a segfault or sanitizer abort
 *    kills only the child and is triaged as HostCrash with the seed
 *    preserved. On platforms without fork() the flag degrades to the
 *    in-process barrier.
 *
 *  - Reaping. A watchdog thread enforces a per-shard wall-clock
 *    deadline (shardTimeoutSeconds): an overdue forked child is
 *    SIGKILLed, an overdue in-process shard is abandoned on its
 *    (detached) worker thread; either way the shard becomes a
 *    HostTimeout outcome and the campaign keeps going. The simulation
 *    event budget (shardEventBudget) complements it deterministically
 *    from inside the simulation — a livelocked shard that stays busy
 *    without finishing exhausts the budget and self-reports
 *    HostTimeout. Both complement the in-sim forward-progress watchdog,
 *    which can only see a *stuck* request, not a stuck host.
 *
 *  - Retry. Only ResourceExhausted outcomes (fork/pipe failure, OOM,
 *    torn pipe output, injected transient faults) are retried, up to
 *    maxRetries with exponential backoff, re-running the *same*
 *    (config, seed) so determinism is preserved. Protocol-level
 *    failures are verdicts about the simulated system — deterministic
 *    per seed — and are never retried; neither are HostCrash or
 *    HostTimeout, which a retry would just reproduce (or worse, mask).
 *
 *  - Checkpointing. With journalPath set, every completed shard is
 *    appended to an append-only JSONL journal (journal.hh). SIGINT and
 *    SIGTERM (handleSignals) trigger a graceful shutdown: queued shards
 *    are cancelled wholesale, running shards finish and are journaled,
 *    and the result is marked interrupted. resume loads the journal,
 *    merges completed shards in index order without re-running them,
 *    and re-executes only shards that are missing or whose journaled
 *    outcome was host-level (a crash/hang describes the old host
 *    environment, not the deterministic simulation, so resume gives
 *    them a fresh chance). Because all aggregates are commutative sums
 *    and grid unions built by the shared ShardMerge, a resumed
 *    campaign's aggregates are bit-identical to an uninterrupted run's
 *    (wall-clock and completion-order fields excepted).
 *
 *  - Repro capture. Any failing shard with preset provenance
 *    (ShardSpec::gpuPreset) gets a DRFTRC01 trace re-recorded into
 *    reproDir, feeding tools/shrink_repro; host-level failures under
 *    fork isolation re-record inside a bounded child, and in-process
 *    host failures fall back to a JSON stub preserving preset + seed.
 *
 * The supervisor's own test harness is the host-fault injector
 * (host_fault.hh), which deterministically makes designated shards
 * crash, hang, or fail transiently — mirroring how proto/fault.hh
 * validates the tester itself.
 */

#ifndef DRF_CAMPAIGN_SUPERVISOR_HH
#define DRF_CAMPAIGN_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace drf
{

/**
 * Transient host-level failure (fork/OOM/IO). Shards may throw it to
 * signal "the host environment failed me, the same (config, seed) may
 * well succeed"; the supervisor triages it as
 * FailureClass::ResourceExhausted and retries.
 */
class ResourceExhaustedError : public std::runtime_error
{
  public:
    explicit ResourceExhaustedError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * 1-based attempt number of the supervised shard invocation running on
 * the calling thread (1 outside a supervised shard, and always 1 under
 * plain runCampaign). Deterministic across isolation modes: the
 * supervisor sets it before invoking the shard, and fork() clones the
 * calling thread, so a shard child observes the same value. The
 * host-fault injector keys its transient faults on it.
 */
unsigned currentShardAttempt();

/** Supervision policy on top of a CampaignConfig. */
struct SupervisorConfig
{
    CampaignConfig campaign;

    /** Run each attempt in a forked child (POSIX; falls back to the
     *  in-process barrier elsewhere). */
    bool forkIsolation = false;

    /** Per-shard wall-clock deadline in seconds; <= 0 disables. */
    double shardTimeoutSeconds = 0.0;

    /** Per-shard simulation event budget; 0 disables. Applied through
     *  ShardSpec::gpuPreset (shards without provenance are unaffected). */
    std::uint64_t shardEventBudget = 0;

    /** Retries after a transient (ResourceExhausted) failure. */
    unsigned maxRetries = 2;

    /** Backoff before retry N is retryBackoffMs << (N - 1). */
    unsigned retryBackoffMs = 10;

    /**
     * Jitter added to each retry backoff, as a percentage of the base
     * delay (0 disables). Derived deterministically from the shard's
     * seed and the attempt number — same shard, same delays — so the
     * retry storm of a fleet of workers de-synchronizes without
     * introducing real randomness into a reproducible campaign.
     */
    unsigned retryJitterPct = 50;

    /** Append-only JSONL journal path; empty disables checkpointing. */
    std::string journalPath;

    /** Load journalPath first and skip completed shards. */
    bool resume = false;

    /** Directory for repro traces of failing shards; empty disables. */
    std::string reproDir;

    /** Install SIGINT/SIGTERM handlers for graceful shutdown (restored
     *  on return). Off by default: embedding processes own their
     *  signal dispositions unless they opt in. */
    bool handleSignals = false;
};

/**
 * Per-shard supervised execution engine: isolation (fork or in-process
 * barrier), wall-clock reaping via its own watchdog thread, the event
 * budget, bounded transient retry, and repro capture — everything the
 * supervisor does to *one* shard, reusable outside a whole-campaign
 * run. runSupervisedCampaign drives one instance from its thread pool;
 * a fleet worker (src/fleet) drives one per process so each leased
 * shard gets the same fault containment as a local campaign shard.
 *
 * Thread-safe: run() may be called concurrently from many threads.
 * Campaign-level policy (journal, resume, signals, merge, early stop)
 * stays with the caller; setStopCheck lets the caller's early-stop
 * state suppress retries that no longer matter.
 */
class ShardRunner
{
  public:
    explicit ShardRunner(const SupervisorConfig &cfg);
    ~ShardRunner();

    ShardRunner(const ShardRunner &) = delete;
    ShardRunner &operator=(const ShardRunner &) = delete;

    /**
     * Install a predicate consulted before each transient retry; when
     * it returns true the current attempt's outcome becomes final.
     * Not thread-safe against concurrent run() — install it first.
     */
    void setStopCheck(std::function<bool()> stop_check);

    /**
     * Run @p spec (campaign position @p index) to a final outcome:
     * attempts + transient retries + repro capture on failure.
     */
    ShardOutcome run(ShardSpec spec, std::size_t index);

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

/**
 * Run @p shards under supervision. Blocks until every shard completed,
 * was skipped by an early stop, or the campaign was interrupted.
 */
CampaignResult runSupervisedCampaign(std::vector<ShardSpec> shards,
                                     const SupervisorConfig &cfg);

} // namespace drf

#endif // DRF_CAMPAIGN_SUPERVISOR_HH
