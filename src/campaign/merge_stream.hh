/**
 * @file
 * Streaming, arrival-order-invariant front end for ShardMerge.
 *
 * The fleet coordinator receives shard results over sockets in whatever
 * order workers finish — and possibly more than once, when a slow
 * worker's lease was stolen and both copies eventually land. ShardMerge
 * itself is commutative for the *aggregate* fields (sums, grid unions),
 * but the saturation curve and first-failure bookkeeping are built in
 * add() order, so feeding it raw arrival order would make those fields
 * depend on worker count and network timing.
 *
 * StreamingShardMerge restores determinism: results are buffered keyed
 * by shard index (duplicates collapse — last record wins, which is a
 * no-op for byte-identical duplicates from a re-leased shard), and
 * drainSorted() merges everything buffered in ascending index order.
 * The coordinator drains at batch barriers, exactly where the
 * single-process supervised run merges its batch in index order — so a
 * fleet campaign's CampaignResult is bit-identical to the jobs=1 run
 * for every field that doesn't measure wall-clock time.
 */

#ifndef DRF_CAMPAIGN_MERGE_STREAM_HH
#define DRF_CAMPAIGN_MERGE_STREAM_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <unordered_set>

#include "campaign/campaign.hh"

namespace drf
{

class StreamingShardMerge
{
  public:
    StreamingShardMerge(const CampaignConfig &cfg,
                        std::size_t shards_planned);

    /** Record the worker count for the summary (fleet: worker procs). */
    void setJobs(unsigned jobs);

    /**
     * Buffer one completed shard. Returns true when @p out is the first
     * record seen for its index — the caller's cue to retire the lease.
     * A duplicate (already buffered or already drained) returns false;
     * a still-buffered duplicate replaces the earlier copy, so journal
     * replays keep their last-record-wins semantics.
     */
    bool offer(ShardOutcome &&out, bool resumed = false);

    /** True when @p index has been offered (buffered or drained). */
    bool have(std::size_t index) const;

    /** Records buffered and not yet drained. */
    std::size_t pending() const;

    /**
     * Merge every buffered record in ascending index order, all stamped
     * with @p wall_seconds (wall times are per-run anyway; sharing one
     * stamp per drain keeps the curve's shape arrival-invariant).
     * Returns the number of records merged.
     */
    std::size_t drainSorted(double wall_seconds);

    // ShardMerge passthroughs.
    bool stopRequested() const;
    void requestStop();
    void markInterrupted();
    void addSkipped(std::size_t count = 1);

    /** Finalize. Call once, after a final drainSorted. */
    CampaignResult take(double wall_seconds);

  private:
    struct Pending
    {
        ShardOutcome out;
        bool resumed = false;
    };

    mutable std::mutex _mutex;
    ShardMerge _merge;
    std::map<std::size_t, Pending> _pending;
    std::unordered_set<std::size_t> _drained;
};

} // namespace drf

#endif // DRF_CAMPAIGN_MERGE_STREAM_HH
