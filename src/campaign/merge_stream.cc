#include "campaign/merge_stream.hh"

#include <utility>

namespace drf
{

StreamingShardMerge::StreamingShardMerge(const CampaignConfig &cfg,
                                         std::size_t shards_planned)
    : _merge(cfg, shards_planned)
{
}

void
StreamingShardMerge::setJobs(unsigned jobs)
{
    _merge.setJobs(jobs);
}

bool
StreamingShardMerge::offer(ShardOutcome &&out, bool resumed)
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t index = out.index;
    if (_drained.count(index))
        return false;
    bool fresh = _pending.find(index) == _pending.end();
    _pending[index] = Pending{std::move(out), resumed};
    return fresh;
}

bool
StreamingShardMerge::have(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _drained.count(index) != 0 ||
           _pending.find(index) != _pending.end();
}

std::size_t
StreamingShardMerge::pending() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _pending.size();
}

std::size_t
StreamingShardMerge::drainSorted(double wall_seconds)
{
    // Move the batch out under the lock, merge outside it: ShardMerge
    // has its own mutex and add() does real work (grid unions).
    std::map<std::size_t, Pending> batch;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        batch.swap(_pending);
        for (const auto &[index, p] : batch)
            _drained.insert(index);
    }
    for (auto &[index, p] : batch)
        _merge.add(std::move(p.out), wall_seconds, p.resumed);
    return batch.size();
}

bool
StreamingShardMerge::stopRequested() const
{
    return _merge.stopRequested();
}

void
StreamingShardMerge::requestStop()
{
    _merge.requestStop();
}

void
StreamingShardMerge::markInterrupted()
{
    _merge.markInterrupted();
}

void
StreamingShardMerge::addSkipped(std::size_t count)
{
    _merge.addSkipped(count);
}

CampaignResult
StreamingShardMerge::take(double wall_seconds)
{
    return _merge.take(wall_seconds);
}

} // namespace drf
