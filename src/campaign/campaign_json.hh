/**
 * @file
 * Machine-readable campaign summaries.
 *
 * A deliberately small hand-rolled JSON emitter (no third-party
 * dependency) used by the campaign benches to write BENCH_campaign.json
 * and by anything else that wants campaign results in a pipeline.
 */

#ifndef DRF_CAMPAIGN_CAMPAIGN_JSON_HH
#define DRF_CAMPAIGN_CAMPAIGN_JSON_HH

#include <cstdint>
#include <sstream>
#include <string>

#include "campaign/campaign.hh"

namespace drf
{

/**
 * Minimal streaming JSON writer: objects, arrays, scalar values. The
 * caller is responsible for well-formed nesting; commas and key quoting
 * are handled here.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a keyed member (inside an object). */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(bool v);
    JsonWriter &nullValue();

    /** Splice a pre-rendered JSON fragment as one value. */
    JsonWriter &raw(const std::string &json);

    std::string str() const { return _out.str(); }

  private:
    void preValue();

    std::ostringstream _out;
    bool _needComma = false;
};

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string jsonEscape(const std::string &s);

/** Render one campaign result as a JSON object. */
std::string campaignToJson(const CampaignResult &result,
                           const std::string &coverage_test_type);

} // namespace drf

#endif // DRF_CAMPAIGN_CAMPAIGN_JSON_HH
