/**
 * @file
 * Multi-seed / multi-configuration testing campaigns.
 *
 * The paper's headline result is a rate: the DRF tester reaches full
 * coherence coverage orders of magnitude faster than the application
 * suite. Every ApuSystem + tester pair is fully self-contained (its own
 * EventQueue, its own RNG) and deterministic, which makes N seeds x M
 * configurations embarrassingly parallel. The campaign runner shards
 * them across a work-stealing thread pool, merges per-shard coverage
 * grids and result statistics under one mutex, records the union
 * coverage saturation curve, and stops early when the union saturates
 * or a shard fails (preserving the first failure's seed and report for
 * deterministic single-threaded reproduction).
 *
 * Determinism contract: each shard's TesterResult is bit-for-bit
 * reproducible from its (configuration, seed) pair regardless of thread
 * count. Aggregates built from commutative operations (stat sums, grid
 * unions over a fixed shard set) are therefore thread-count invariant
 * too; only completion-order artifacts (the saturation curve, wall
 * times, and which shards got skipped after an early stop) vary.
 */

#ifndef DRF_CAMPAIGN_CAMPAIGN_HH
#define DRF_CAMPAIGN_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "coverage/coverage.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

namespace drf
{

/** Everything one shard (one isolated simulation) produces. */
struct ShardOutcome
{
    std::string name;
    std::uint64_t seed = 0;
    std::size_t index = 0; ///< position in the campaign's shard list
    TesterResult result;

    /** Host attempts consumed (1 + transient retries; supervisor). */
    unsigned attempts = 1;

    // Coverage snapshots; null when the shard's system lacks the level.
    std::unique_ptr<CoverageGrid> l1;
    std::unique_ptr<CoverageGrid> l2;
    std::unique_ptr<CoverageGrid> dir;
};

/** A shard: a name, the seed that reproduces it, and how to run it. */
struct ShardSpec
{
    std::string name;
    std::uint64_t seed = 0;
    std::function<ShardOutcome()> run;

    /**
     * Preset provenance for GPU shards (set by gpuShard). The campaign
     * supervisor uses it to re-record a DRFTRC01 repro trace when the
     * shard fails and to apply its simulation event budget. Optional:
     * shards without it are still supervised, just without those two
     * features.
     */
    std::shared_ptr<const GpuTestPreset> gpuPreset;
};

/** Campaign-level policy knobs. */
struct CampaignConfig
{
    /** Worker threads; 0 means hardware concurrency. */
    unsigned jobs = 0;

    /** Stop launching new shards once any shard fails (protocol-level
     *  classes; host-level classes follow stopOnHostFailure). */
    bool stopOnFailure = true;

    /**
     * Stop launching new shards when a shard fails at *host* level
     * (HostCrash/HostTimeout/ResourceExhausted — produced by supervised
     * campaigns only; see src/campaign/supervisor.hh). Default off: a
     * resilient campaign triages host faults and keeps going.
     */
    bool stopOnHostFailure = false;

    /**
     * Early-stop threshold on union coverage, in percent; <= 0 disables.
     * The campaign stops launching shards once every observed coverage
     * level (L1 and L2) reaches this percentage.
     */
    double saturationPct = 0.0;

    /** Test type used for coverage percentages (Impsb handling). */
    std::string coverageTestType = "gpu_tester";

    /** Retain every shard's outcome in CampaignResult::outcomes. */
    bool keepOutcomes = false;
};

/** Reproduction handle for the first failing shard. */
struct ShardFailure
{
    std::string name;
    std::uint64_t seed = 0;
    std::size_t index = 0;
    std::string report;
    FailureClass failureClass = FailureClass::None;
};

/** One point of the union-coverage saturation curve. */
struct CoveragePoint
{
    std::size_t shardsCompleted = 0;
    double l1Pct = 0.0;
    double l2Pct = 0.0;
    std::uint64_t cumulativeEvents = 0;
    double wallSeconds = 0.0; ///< since campaign start

    // The shard that produced this point, with its episode and action
    // counts (actions = loads checked + stores retired + atomics
    // checked), so coverage-per-episode efficiency is computable
    // offline from the campaign JSON alone.
    std::string shardName;
    std::uint64_t shardSeed = 0;
    std::uint64_t shardEpisodes = 0;
    std::uint64_t shardActions = 0;
    std::uint64_t cumulativeEpisodes = 0;
    std::uint64_t cumulativeActions = 0;

    /** Union cells (L1+L2+dir) this shard covered first. */
    std::size_t newCells = 0;
};

/** Aggregated campaign summary. */
struct CampaignResult
{
    bool passed = true;
    std::size_t shardsPlanned = 0;
    std::size_t shardsRun = 0;
    std::size_t shardsSkipped = 0; ///< not launched due to early stop
    unsigned jobs = 0;             ///< worker threads actually used

    // Host-level triage, populated by supervised campaigns (see
    // src/campaign/supervisor.hh); all zero under plain runCampaign.
    std::size_t hostCrashes = 0;       ///< shards ending HostCrash
    std::size_t hostTimeouts = 0;      ///< shards reaped (deadline/budget)
    std::size_t resourceExhausted = 0; ///< shards that never got past
                                       ///< transient host failures
    std::uint64_t retriesPerformed = 0; ///< transient retries, total
    std::size_t shardsResumed = 0; ///< merged from the journal, not run
    bool interrupted = false;      ///< SIGINT/SIGTERM graceful shutdown

    /** Lowest-index failure observed (reproduce with its name/seed). */
    std::optional<ShardFailure> firstFailure;

    // Union coverage over all completed shards.
    std::optional<CoverageGrid> l1Union;
    std::optional<CoverageGrid> l2Union;
    std::optional<CoverageGrid> dirUnion;

    /** Union coverage after each completed shard, completion order. */
    std::vector<CoveragePoint> saturationCurve;

    /** Completed-shard count at which saturationPct was first met. */
    std::optional<std::size_t> shardsToSaturation;

    // Sums over completed shards.
    Tick totalTicks = 0;
    std::uint64_t totalEvents = 0;
    std::uint64_t totalEpisodes = 0;
    std::uint64_t totalLoadsChecked = 0;
    std::uint64_t totalStoresRetired = 0;
    std::uint64_t totalAtomicsChecked = 0;

    /** Sum of per-shard host seconds (serial-equivalent cost). */
    double shardSecondsSum = 0.0;
    /** Campaign wall-clock seconds. */
    double wallSeconds = 0.0;
    /** Aggregate throughput: episodes retired per wall-clock second. */
    double episodesPerSec = 0.0;
    /** Aggregate throughput: simulation events per wall-clock second. */
    double eventsPerSec = 0.0;

    /** Per-shard outcomes, shard-index order (keepOutcomes only). */
    std::vector<ShardOutcome> outcomes;
};

/**
 * Thread-safe cross-shard merge: the one place campaign aggregates are
 * built. runCampaign and the supervisor (supervisor.cc) both funnel
 * every completed ShardOutcome through add(), so stat sums, union
 * coverage, the saturation curve, first-failure bookkeeping, host
 * triage counters, and the early-stop policy have exactly one
 * implementation — which is what makes a resumed campaign's aggregates
 * bit-identical to an uninterrupted run's.
 */
class ShardMerge
{
  public:
    ShardMerge(const CampaignConfig &cfg, std::size_t shards_planned);

    /** Record the worker-thread count for the summary. */
    void setJobs(unsigned jobs);

    /** True once a failure/saturation/shutdown stop was requested. */
    bool stopRequested() const;

    /** Stop launching further shards (sticky). */
    void requestStop();

    /** Flag a SIGINT/SIGTERM graceful shutdown; implies requestStop. */
    void markInterrupted();

    /** Account shards skipped by an early stop. */
    void addSkipped(std::size_t count = 1);

    /**
     * Merge one completed shard (thread-safe). @p wall_seconds is the
     * campaign-relative completion time for the saturation curve;
     * @p resumed marks outcomes replayed from a journal rather than
     * executed (they count into shardsRun *and* shardsResumed).
     */
    void add(ShardOutcome &&out, double wall_seconds,
             bool resumed = false);

    /** Finalize and return the result. Call once, no concurrent adds. */
    CampaignResult take(double wall_seconds);

  private:
    bool saturatedLocked() const;

    const CampaignConfig _cfg;
    std::mutex _mutex;
    CampaignResult _result;
    CoverageAccumulator _l1;
    CoverageAccumulator _l2;
    CoverageAccumulator _dir;
    std::atomic<bool> _stop{false};
};

/** Run @p shards under @p cfg; blocks until done or early-stopped. */
CampaignResult runCampaign(std::vector<ShardSpec> shards,
                           const CampaignConfig &cfg = {});

/** Shard running one Table III GPU tester preset. */
ShardSpec gpuShard(const GpuTestPreset &preset);

/** Shard running one CPU tester preset. */
ShardSpec cpuShard(const CpuTestPreset &preset);

/**
 * N-seed campaign over one GPU preset: shard i runs @p base with seed
 * first_seed + i.
 */
std::vector<ShardSpec> gpuSeedSweep(const GpuTestPreset &base,
                                    std::uint64_t first_seed,
                                    std::size_t num_seeds);

} // namespace drf

#endif // DRF_CAMPAIGN_CAMPAIGN_HH
