/**
 * @file
 * Multi-seed / multi-configuration testing campaigns.
 *
 * The paper's headline result is a rate: the DRF tester reaches full
 * coherence coverage orders of magnitude faster than the application
 * suite. Every ApuSystem + tester pair is fully self-contained (its own
 * EventQueue, its own RNG) and deterministic, which makes N seeds x M
 * configurations embarrassingly parallel. The campaign runner shards
 * them across a work-stealing thread pool, merges per-shard coverage
 * grids and result statistics under one mutex, records the union
 * coverage saturation curve, and stops early when the union saturates
 * or a shard fails (preserving the first failure's seed and report for
 * deterministic single-threaded reproduction).
 *
 * Determinism contract: each shard's TesterResult is bit-for-bit
 * reproducible from its (configuration, seed) pair regardless of thread
 * count. Aggregates built from commutative operations (stat sums, grid
 * unions over a fixed shard set) are therefore thread-count invariant
 * too; only completion-order artifacts (the saturation curve, wall
 * times, and which shards got skipped after an early stop) vary.
 */

#ifndef DRF_CAMPAIGN_CAMPAIGN_HH
#define DRF_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coverage/coverage.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

namespace drf
{

/** Everything one shard (one isolated simulation) produces. */
struct ShardOutcome
{
    std::string name;
    std::uint64_t seed = 0;
    std::size_t index = 0; ///< position in the campaign's shard list
    TesterResult result;

    // Coverage snapshots; null when the shard's system lacks the level.
    std::unique_ptr<CoverageGrid> l1;
    std::unique_ptr<CoverageGrid> l2;
    std::unique_ptr<CoverageGrid> dir;
};

/** A shard: a name, the seed that reproduces it, and how to run it. */
struct ShardSpec
{
    std::string name;
    std::uint64_t seed = 0;
    std::function<ShardOutcome()> run;
};

/** Campaign-level policy knobs. */
struct CampaignConfig
{
    /** Worker threads; 0 means hardware concurrency. */
    unsigned jobs = 0;

    /** Stop launching new shards once any shard fails. */
    bool stopOnFailure = true;

    /**
     * Early-stop threshold on union coverage, in percent; <= 0 disables.
     * The campaign stops launching shards once every observed coverage
     * level (L1 and L2) reaches this percentage.
     */
    double saturationPct = 0.0;

    /** Test type used for coverage percentages (Impsb handling). */
    std::string coverageTestType = "gpu_tester";

    /** Retain every shard's outcome in CampaignResult::outcomes. */
    bool keepOutcomes = false;
};

/** Reproduction handle for the first failing shard. */
struct ShardFailure
{
    std::string name;
    std::uint64_t seed = 0;
    std::size_t index = 0;
    std::string report;
};

/** One point of the union-coverage saturation curve. */
struct CoveragePoint
{
    std::size_t shardsCompleted = 0;
    double l1Pct = 0.0;
    double l2Pct = 0.0;
    std::uint64_t cumulativeEvents = 0;
    double wallSeconds = 0.0; ///< since campaign start

    // The shard that produced this point, with its episode and action
    // counts (actions = loads checked + stores retired + atomics
    // checked), so coverage-per-episode efficiency is computable
    // offline from the campaign JSON alone.
    std::string shardName;
    std::uint64_t shardSeed = 0;
    std::uint64_t shardEpisodes = 0;
    std::uint64_t shardActions = 0;
    std::uint64_t cumulativeEpisodes = 0;
    std::uint64_t cumulativeActions = 0;

    /** Union cells (L1+L2+dir) this shard covered first. */
    std::size_t newCells = 0;
};

/** Aggregated campaign summary. */
struct CampaignResult
{
    bool passed = true;
    std::size_t shardsPlanned = 0;
    std::size_t shardsRun = 0;
    std::size_t shardsSkipped = 0; ///< not launched due to early stop
    unsigned jobs = 0;             ///< worker threads actually used

    /** Lowest-index failure observed (reproduce with its name/seed). */
    std::optional<ShardFailure> firstFailure;

    // Union coverage over all completed shards.
    std::optional<CoverageGrid> l1Union;
    std::optional<CoverageGrid> l2Union;
    std::optional<CoverageGrid> dirUnion;

    /** Union coverage after each completed shard, completion order. */
    std::vector<CoveragePoint> saturationCurve;

    /** Completed-shard count at which saturationPct was first met. */
    std::optional<std::size_t> shardsToSaturation;

    // Sums over completed shards.
    Tick totalTicks = 0;
    std::uint64_t totalEvents = 0;
    std::uint64_t totalEpisodes = 0;
    std::uint64_t totalLoadsChecked = 0;
    std::uint64_t totalStoresRetired = 0;
    std::uint64_t totalAtomicsChecked = 0;

    /** Sum of per-shard host seconds (serial-equivalent cost). */
    double shardSecondsSum = 0.0;
    /** Campaign wall-clock seconds. */
    double wallSeconds = 0.0;
    /** Aggregate throughput: episodes retired per wall-clock second. */
    double episodesPerSec = 0.0;
    /** Aggregate throughput: simulation events per wall-clock second. */
    double eventsPerSec = 0.0;

    /** Per-shard outcomes, shard-index order (keepOutcomes only). */
    std::vector<ShardOutcome> outcomes;
};

/** Run @p shards under @p cfg; blocks until done or early-stopped. */
CampaignResult runCampaign(std::vector<ShardSpec> shards,
                           const CampaignConfig &cfg = {});

/** Shard running one Table III GPU tester preset. */
ShardSpec gpuShard(const GpuTestPreset &preset);

/** Shard running one CPU tester preset. */
ShardSpec cpuShard(const CpuTestPreset &preset);

/**
 * N-seed campaign over one GPU preset: shard i runs @p base with seed
 * first_seed + i.
 */
std::vector<ShardSpec> gpuSeedSweep(const GpuTestPreset &base,
                                    std::uint64_t first_seed,
                                    std::size_t num_seeds);

} // namespace drf

#endif // DRF_CAMPAIGN_CAMPAIGN_HH
