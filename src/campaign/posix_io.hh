/**
 * @file
 * Robust POSIX fd I/O: the one place short writes, EINTR, and EPIPE are
 * handled.
 *
 * Three consumers write to fds that can fail mid-transfer — the journal
 * (a file that may hit a full disk), the supervisor's fork pipe (whose
 * reader can die first), and the fleet's TCP transport (whose peer can
 * be SIGKILLed at any byte). All of them must treat a short write as
 * "keep going", EINTR as "retry", and EPIPE/ECONNRESET as "the peer is
 * gone, report it, don't die". Centralizing that here keeps the three
 * call sites from each growing a subtly different retry loop.
 *
 * Writes to a closed pipe/socket normally raise SIGPIPE, whose default
 * action terminates the process before write() even returns EPIPE;
 * every fleet/pipe entry point calls ignoreSigpipe() first so the error
 * comes back through the return value instead.
 */

#ifndef DRF_CAMPAIGN_POSIX_IO_HH
#define DRF_CAMPAIGN_POSIX_IO_HH

#include <cstddef>
#include <string>

namespace drf::io
{

/**
 * Write all @p len bytes to @p fd, retrying short writes and EINTR.
 * Returns false on any hard error (EPIPE included); errno is preserved
 * for the caller's diagnostics.
 */
bool writeAll(int fd, const void *data, std::size_t len);

/** writeAll over a string. */
bool writeAll(int fd, const std::string &data);

/**
 * Read exactly @p len bytes into @p buf, retrying EINTR and short
 * reads. Returns false on error or EOF before @p len bytes arrived.
 */
bool readExact(int fd, void *buf, std::size_t len);

/**
 * One read() of up to @p len bytes with EINTR retry. Returns the byte
 * count, 0 on EOF, -1 on a hard error — the shape poll loops want.
 */
long readSome(int fd, void *buf, std::size_t len);

/** Read until EOF (the fork-pipe drain). Errors end the read early. */
std::string readToEof(int fd);

/**
 * Process-wide, idempotent SIGPIPE -> SIG_IGN. Call before writing to
 * any fd whose reader can vanish (sockets, pipes).
 */
void ignoreSigpipe();

} // namespace drf::io

#endif // DRF_CAMPAIGN_POSIX_IO_HH
