#include "campaign/journal.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>

#include "campaign/campaign_json.hh"
#include "proto/directory.hh"
#include "proto/gpu_l1.hh"
#include "proto/gpu_l2.hh"

namespace drf
{

namespace
{

/**
 * Minimal JSON value + recursive-descent parser, scoped to the flat
 * schema this file emits. Numbers keep their raw text so 64-bit tick
 * counts round-trip exactly (no double intermediate).
 */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    std::string raw;    ///< number text
    std::string string; ///< decoded string
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }

    std::uint64_t
    asU64() const
    {
        return std::strtoull(raw.c_str(), nullptr, 10);
    }

    double
    asDouble() const
    {
        return std::strtod(raw.c_str(), nullptr);
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return _pos == _text.size();
    }

  private:
    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (_pos >= _text.size() || _text[_pos] != c)
            return false;
        ++_pos;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (_pos >= _text.size())
            return false;
        char c = _text[_pos];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return parseString(out.string);
        }
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n') {
            if (!parseLiteral("null"))
                return false;
            out.type = JsonValue::Type::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (_text.compare(_pos, n, lit) != 0)
            return false;
        _pos += n;
        return true;
    }

    bool
    parseBool(JsonValue &out)
    {
        out.type = JsonValue::Type::Bool;
        if (parseLiteral("true")) {
            out.boolean = true;
            return true;
        }
        if (parseLiteral("false")) {
            out.boolean = false;
            return true;
        }
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = _pos;
        if (_pos < _text.size() &&
            (_text[_pos] == '-' || _text[_pos] == '+'))
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '-' ||
                _text[_pos] == '+'))
            ++_pos;
        if (_pos == start)
            return false;
        out.type = JsonValue::Type::Number;
        out.raw = _text.substr(start, _pos - start);
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (_pos < _text.size()) {
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (_pos >= _text.size())
                return false;
            char esc = _text[_pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    return false;
                unsigned code = static_cast<unsigned>(std::strtoul(
                    _text.substr(_pos, 4).c_str(), nullptr, 16));
                _pos += 4;
                // The escaper only emits \u00xx for control bytes.
                out.push_back(static_cast<char>(code & 0xff));
                break;
              }
              default: return false;
            }
        }
        return false;
    }

    bool
    parseArray(JsonValue &out)
    {
        if (!consume('['))
            return false;
        out.type = JsonValue::Type::Array;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue elem;
            if (!parseValue(elem))
                return false;
            out.array.push_back(std::move(elem));
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        if (!consume('{'))
            return false;
        out.type = JsonValue::Type::Object;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

/**
 * Level name -> live spec singleton. Campaign shards only ever carry
 * these three grids (gpuShard/cpuShard in campaign.cc).
 */
const TransitionSpec *
specForLevel(const std::string &level)
{
    if (level == "l1")
        return &GpuL1Cache::spec();
    if (level == "l2")
        return &GpuL2Cache::spec();
    if (level == "dir")
        return &Directory::spec();
    return nullptr;
}

void
writeGrid(JsonWriter &w, const char *level, const CoverageGrid &grid)
{
    const TransitionSpec &spec = grid.spec();
    w.beginObject();
    w.key("level").value(level);
    w.key("spec").value(spec.name());
    w.key("cells").beginArray();
    for (std::size_t e = 0; e < spec.numEvents(); ++e) {
        for (std::size_t s = 0; s < spec.numStates(); ++s) {
            std::uint64_t count = grid.count(e, s);
            if (count == 0)
                continue;
            w.beginArray();
            w.value(static_cast<std::uint64_t>(spec.cell(e, s)));
            w.value(count);
            w.endArray();
        }
    }
    w.endArray();
    w.endObject();
}

std::unique_ptr<CoverageGrid>
parseGrid(const JsonValue &v)
{
    if (v.type != JsonValue::Type::Object)
        return nullptr;
    const JsonValue *level = v.find("level");
    const JsonValue *spec_name = v.find("spec");
    const JsonValue *cells = v.find("cells");
    if (!level || !spec_name || !cells ||
        cells->type != JsonValue::Type::Array)
        return nullptr;
    const TransitionSpec *spec = specForLevel(level->string);
    if (!spec || spec->name() != spec_name->string)
        return nullptr;
    auto grid = std::make_unique<CoverageGrid>(*spec);
    for (const JsonValue &cell : cells->array) {
        if (cell.type != JsonValue::Type::Array ||
            cell.array.size() != 2)
            return nullptr;
        std::uint64_t flat = cell.array[0].asU64();
        std::uint64_t count = cell.array[1].asU64();
        if (flat >= spec->numCells())
            return nullptr;
        std::size_t event = flat / spec->numStates();
        std::size_t state = flat % spec->numStates();
        grid->setCount(event, state, count);
    }
    return grid;
}

} // namespace

std::string
shardOutcomeToJson(const ShardOutcome &out)
{
    JsonWriter w;
    w.beginObject();
    w.key("v").value(1);
    w.key("kind").value("shard");
    w.key("index").value(static_cast<std::uint64_t>(out.index));
    w.key("name").value(out.name);
    w.key("seed").value(out.seed);
    w.key("attempts").value(out.attempts);
    w.key("passed").value(out.result.passed);
    w.key("failure_class")
        .value(failureClassName(out.result.failureClass));
    w.key("report").value(out.result.report);
    w.key("ticks").value(out.result.ticks);
    w.key("events").value(out.result.events);
    w.key("episodes").value(out.result.episodes);
    w.key("loads_checked").value(out.result.loadsChecked);
    w.key("stores_retired").value(out.result.storesRetired);
    w.key("atomics_checked").value(out.result.atomicsChecked);
    w.key("host_seconds").value(out.result.hostSeconds);
    w.key("grids").beginArray();
    if (out.l1)
        writeGrid(w, "l1", *out.l1);
    if (out.l2)
        writeGrid(w, "l2", *out.l2);
    if (out.dir)
        writeGrid(w, "dir", *out.dir);
    w.endArray();
    w.endObject();
    return w.str();
}

bool
parseShardOutcome(const std::string &line, ShardOutcome &out)
{
    JsonValue root;
    if (!JsonParser(line).parse(root) ||
        root.type != JsonValue::Type::Object)
        return false;

    const JsonValue *kind = root.find("kind");
    if (!kind || kind->string != "shard")
        return false;

    const JsonValue *index = root.find("index");
    const JsonValue *name = root.find("name");
    const JsonValue *seed = root.find("seed");
    const JsonValue *attempts = root.find("attempts");
    const JsonValue *passed = root.find("passed");
    const JsonValue *cls = root.find("failure_class");
    const JsonValue *report = root.find("report");
    const JsonValue *ticks = root.find("ticks");
    const JsonValue *events = root.find("events");
    const JsonValue *episodes = root.find("episodes");
    const JsonValue *loads = root.find("loads_checked");
    const JsonValue *stores = root.find("stores_retired");
    const JsonValue *atomics = root.find("atomics_checked");
    const JsonValue *host_seconds = root.find("host_seconds");
    if (!index || !name || !seed || !attempts || !passed || !cls ||
        !report || !ticks || !events || !episodes || !loads || !stores ||
        !atomics || !host_seconds)
        return false;

    std::optional<FailureClass> failure_class =
        parseFailureClass(cls->string);
    if (!failure_class)
        return false;

    ShardOutcome parsed;
    parsed.index = static_cast<std::size_t>(index->asU64());
    parsed.name = name->string;
    parsed.seed = seed->asU64();
    parsed.attempts = static_cast<unsigned>(attempts->asU64());
    parsed.result.passed = passed->boolean;
    parsed.result.failureClass = *failure_class;
    parsed.result.report = report->string;
    parsed.result.ticks = ticks->asU64();
    parsed.result.events = events->asU64();
    parsed.result.episodes = episodes->asU64();
    parsed.result.loadsChecked = loads->asU64();
    parsed.result.storesRetired = stores->asU64();
    parsed.result.atomicsChecked = atomics->asU64();
    parsed.result.hostSeconds = host_seconds->asDouble();

    if (const JsonValue *grids = root.find("grids")) {
        if (grids->type != JsonValue::Type::Array)
            return false;
        for (const JsonValue &g : grids->array) {
            const JsonValue *level = g.find("level");
            std::unique_ptr<CoverageGrid> grid = parseGrid(g);
            if (!level || !grid)
                return false;
            if (level->string == "l1")
                parsed.l1 = std::move(grid);
            else if (level->string == "l2")
                parsed.l2 = std::move(grid);
            else if (level->string == "dir")
                parsed.dir = std::move(grid);
            else
                return false;
        }
    }

    out = std::move(parsed);
    return true;
}

bool
loadJournal(const std::string &path, std::vector<ShardOutcome> &records)
{
    std::ifstream in(path);
    if (!in.is_open())
        return false;

    std::map<std::size_t, ShardOutcome> latest; // last record wins
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ShardOutcome out;
        // Unparseable lines — the header, a line truncated by an
        // interrupted write — are skipped, not fatal: a resumable
        // journal beats a strict one here.
        if (!parseShardOutcome(line, out))
            continue;
        latest[out.index] = std::move(out);
    }

    records.clear();
    records.reserve(latest.size());
    for (auto &[idx, out] : latest)
        records.push_back(std::move(out));
    return true;
}

CampaignJournal::CampaignJournal(const std::string &path)
{
    if (!path.empty())
        _out.open(path, std::ios::app);
}

void
CampaignJournal::append(const std::string &line)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (!_out.is_open())
        return;
    _out << line << '\n';
    _out.flush();
}

} // namespace drf
