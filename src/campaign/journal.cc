#include "campaign/journal.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DRF_JOURNAL_HAVE_FD 1
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#else
#define DRF_JOURNAL_HAVE_FD 0
#endif

#include "campaign/campaign_json.hh"
#include "campaign/json_value.hh"
#include "campaign/posix_io.hh"
#include "chaos/chaos.hh"
#include "proto/directory.hh"
#include "proto/gpu_l1.hh"
#include "proto/gpu_l2.hh"

namespace drf
{

namespace
{

/**
 * (level, spec name) -> live spec singleton. Campaign shards only ever
 * carry these three grids (gpuShard/cpuShard in campaign.cc); the L1
 * level has one spec per protocol variant, distinguished by name.
 */
const TransitionSpec *
specForLevel(const std::string &level, const std::string &spec_name)
{
    if (level == "l1") {
        for (ProtocolKind kind :
             {ProtocolKind::Viper, ProtocolKind::Lrcc}) {
            const TransitionSpec &spec = GpuL1Cache::specFor(kind);
            if (spec.name() == spec_name)
                return &spec;
        }
        return nullptr;
    }
    if (level == "l2")
        return &GpuL2Cache::spec();
    if (level == "dir")
        return &Directory::spec();
    return nullptr;
}

void
writeGrid(JsonWriter &w, const char *level, const CoverageGrid &grid)
{
    const TransitionSpec &spec = grid.spec();
    w.beginObject();
    w.key("level").value(level);
    w.key("spec").value(spec.name());
    w.key("cells").beginArray();
    for (std::size_t e = 0; e < spec.numEvents(); ++e) {
        for (std::size_t s = 0; s < spec.numStates(); ++s) {
            std::uint64_t count = grid.count(e, s);
            if (count == 0)
                continue;
            w.beginArray();
            w.value(static_cast<std::uint64_t>(spec.cell(e, s)));
            w.value(count);
            w.endArray();
        }
    }
    w.endArray();
    w.endObject();
}

std::unique_ptr<CoverageGrid>
parseGrid(const JsonValue &v)
{
    if (v.type != JsonValue::Type::Object)
        return nullptr;
    const JsonValue *level = v.find("level");
    const JsonValue *spec_name = v.find("spec");
    const JsonValue *cells = v.find("cells");
    if (!level || !spec_name || !cells ||
        cells->type != JsonValue::Type::Array)
        return nullptr;
    const TransitionSpec *spec =
        specForLevel(level->string, spec_name->string);
    if (!spec || spec->name() != spec_name->string)
        return nullptr;
    auto grid = std::make_unique<CoverageGrid>(*spec);
    for (const JsonValue &cell : cells->array) {
        if (cell.type != JsonValue::Type::Array ||
            cell.array.size() != 2)
            return nullptr;
        std::uint64_t flat = cell.array[0].asU64();
        std::uint64_t count = cell.array[1].asU64();
        if (flat >= spec->numCells())
            return nullptr;
        std::size_t event = flat / spec->numStates();
        std::size_t state = flat % spec->numStates();
        grid->setCount(event, state, count);
    }
    return grid;
}

} // namespace

std::string
shardOutcomeToJson(const ShardOutcome &out)
{
    JsonWriter w;
    w.beginObject();
    w.key("v").value(1);
    w.key("kind").value("shard");
    w.key("index").value(static_cast<std::uint64_t>(out.index));
    w.key("name").value(out.name);
    w.key("seed").value(out.seed);
    w.key("attempts").value(out.attempts);
    w.key("passed").value(out.result.passed);
    w.key("failure_class")
        .value(failureClassName(out.result.failureClass));
    w.key("report").value(out.result.report);
    w.key("ticks").value(out.result.ticks);
    w.key("events").value(out.result.events);
    w.key("episodes").value(out.result.episodes);
    w.key("loads_checked").value(out.result.loadsChecked);
    w.key("stores_retired").value(out.result.storesRetired);
    w.key("atomics_checked").value(out.result.atomicsChecked);
    w.key("host_seconds").value(out.result.hostSeconds);
    w.key("grids").beginArray();
    if (out.l1)
        writeGrid(w, "l1", *out.l1);
    if (out.l2)
        writeGrid(w, "l2", *out.l2);
    if (out.dir)
        writeGrid(w, "dir", *out.dir);
    w.endArray();
    w.endObject();
    return w.str();
}

bool
parseShardOutcome(const std::string &line, ShardOutcome &out)
{
    JsonValue root;
    if (!parseJson(line, root) ||
        root.type != JsonValue::Type::Object)
        return false;

    const JsonValue *kind = root.find("kind");
    if (!kind || kind->string != "shard")
        return false;

    const JsonValue *index = root.find("index");
    const JsonValue *name = root.find("name");
    const JsonValue *seed = root.find("seed");
    const JsonValue *attempts = root.find("attempts");
    const JsonValue *passed = root.find("passed");
    const JsonValue *cls = root.find("failure_class");
    const JsonValue *report = root.find("report");
    const JsonValue *ticks = root.find("ticks");
    const JsonValue *events = root.find("events");
    const JsonValue *episodes = root.find("episodes");
    const JsonValue *loads = root.find("loads_checked");
    const JsonValue *stores = root.find("stores_retired");
    const JsonValue *atomics = root.find("atomics_checked");
    const JsonValue *host_seconds = root.find("host_seconds");
    if (!index || !name || !seed || !attempts || !passed || !cls ||
        !report || !ticks || !events || !episodes || !loads || !stores ||
        !atomics || !host_seconds)
        return false;

    std::optional<FailureClass> failure_class =
        parseFailureClass(cls->string);
    if (!failure_class)
        return false;

    ShardOutcome parsed;
    parsed.index = static_cast<std::size_t>(index->asU64());
    parsed.name = name->string;
    parsed.seed = seed->asU64();
    parsed.attempts = static_cast<unsigned>(attempts->asU64());
    parsed.result.passed = passed->boolean;
    parsed.result.failureClass = *failure_class;
    parsed.result.report = report->string;
    parsed.result.ticks = ticks->asU64();
    parsed.result.events = events->asU64();
    parsed.result.episodes = episodes->asU64();
    parsed.result.loadsChecked = loads->asU64();
    parsed.result.storesRetired = stores->asU64();
    parsed.result.atomicsChecked = atomics->asU64();
    parsed.result.hostSeconds = host_seconds->asDouble();

    if (const JsonValue *grids = root.find("grids")) {
        if (grids->type != JsonValue::Type::Array)
            return false;
        for (const JsonValue &g : grids->array) {
            const JsonValue *level = g.find("level");
            std::unique_ptr<CoverageGrid> grid = parseGrid(g);
            if (!level || !grid)
                return false;
            if (level->string == "l1")
                parsed.l1 = std::move(grid);
            else if (level->string == "l2")
                parsed.l2 = std::move(grid);
            else if (level->string == "dir")
                parsed.dir = std::move(grid);
            else
                return false;
        }
    }

    out = std::move(parsed);
    return true;
}

std::string
sealJournalRecord(const std::string &line)
{
    char head[32];
    std::snprintf(head, sizeof(head), "{\"crc\":\"%08x\",\"data\":",
                  chaos::crc32c(line));
    std::string out;
    out.reserve(line.size() + 28);
    out.append(head);
    out.append(line);
    out.push_back('}');
    return out;
}

JournalSeal
unsealJournalRecord(const std::string &line, std::string &inner)
{
    // {"crc":"xxxxxxxx","data":<payload>}  — fixed-offset envelope; the
    // payload is a JsonWriter line and so contains no raw newlines.
    constexpr std::size_t kPrefix = 8; // {"crc":"
    constexpr std::size_t kHex = 8;
    constexpr std::size_t kMid = 9; // ","data":
    if (line.size() < kPrefix + kHex + kMid + 1 ||
        line.compare(0, kPrefix, "{\"crc\":\"") != 0)
        return JournalSeal::Bare;
    if (line.compare(kPrefix + kHex, kMid, "\",\"data\":") != 0 ||
        line.back() != '}')
        return JournalSeal::Bad;
    std::uint32_t want = 0;
    for (std::size_t i = kPrefix; i < kPrefix + kHex; ++i) {
        char c = line[i];
        unsigned digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<unsigned>(c - 'a') + 10;
        else
            return JournalSeal::Bad;
        want = (want << 4) | digit;
    }
    std::string payload =
        line.substr(kPrefix + kHex + kMid,
                    line.size() - (kPrefix + kHex + kMid) - 1);
    if (chaos::crc32c(payload) != want)
        return JournalSeal::Bad;
    inner = std::move(payload);
    return JournalSeal::Ok;
}

std::string
journalStatusJson(const JournalStatus &status)
{
    JsonWriter w;
    w.beginObject();
    w.key("enabled").value(status.enabled);
    w.key("degraded").value(status.degraded);
    w.key("records").value(status.records);
    w.key("failed_writes").value(status.failedWrites);
    w.key("fsync_failures").value(status.fsyncFailures);
    w.key("retries").value(status.retries);
    w.key("last_errno")
        .value(static_cast<std::uint64_t>(
            status.lastErrno < 0 ? 0 : status.lastErrno));
    w.key("last_op").value(status.lastOp);
    w.endObject();
    return w.str();
}

bool
loadJournal(const std::string &path, std::vector<ShardOutcome> &records,
            JournalLoadStats *stats)
{
    std::ifstream in(path);
    if (!in.is_open())
        return false;

    JournalLoadStats counted;
    std::map<std::size_t, ShardOutcome> latest; // last record wins
    std::string line;
    std::string inner;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++counted.lines;
        JournalSeal seal = unsealJournalRecord(line, inner);
        if (seal == JournalSeal::Bad) {
            // Detected damage: bit rot under the envelope, or a torn
            // write spliced against a later append. Self-heal by
            // skipping — the shard is simply re-run on resume.
            ++counted.crcSkipped;
            continue;
        }
        const std::string &payload =
            seal == JournalSeal::Ok ? inner : line;
        ShardOutcome out;
        if (parseShardOutcome(payload, out)) {
            ++counted.records;
            latest[out.index] = std::move(out);
            continue;
        }
        // Structured non-shard records (the campaign header) are
        // expected; anything else unparseable is a torn line — the
        // classic interrupted-write tail — skipped, not fatal: a
        // resumable journal beats a strict one here.
        JsonValue v;
        if (parseJson(payload, v) &&
            v.type == JsonValue::Type::Object) {
            const JsonValue *kind = v.find("kind");
            if (kind && kind->string != "shard")
                continue;
        }
        ++counted.parseSkipped;
    }

    records.clear();
    records.reserve(latest.size());
    for (auto &[idx, out] : latest)
        records.push_back(std::move(out));
    if (stats)
        *stats = counted;
    return true;
}

CampaignJournal::CampaignJournal(const std::string &path)
    : CampaignJournal(path, Policy{})
{
}

CampaignJournal::CampaignJournal(const std::string &path,
                                 const Policy &policy)
    : _policy(policy)
{
    if (path.empty())
        return;
#if DRF_JOURNAL_HAVE_FD
    _fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
#endif
    _status.enabled = _fd >= 0;
    if (_fd < 0) {
        _status.lastErrno = errno;
        _status.lastOp = "open";
    }
}

JournalStatus
CampaignJournal::status()
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _status;
}

CampaignJournal::~CampaignJournal()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0)
        return;
    flushLocked(/*sync=*/true);
#if DRF_JOURNAL_HAVE_FD
    ::close(_fd);
#endif
    _fd = -1;
}

void
CampaignJournal::append(const std::string &line)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0 || _failed)
        return;
    if (_policy.crcRecords)
        _buffer.append(sealJournalRecord(line));
    else
        _buffer.append(line);
    _buffer.push_back('\n');
    ++_recordsBuffered;
    ++_status.records;
    if (_buffer.size() >= _policy.flushBytes) {
        bool sync = _policy.syncEveryRecords != 0 &&
                    _recordsSinceSync + _recordsBuffered >=
                        _policy.syncEveryRecords;
        flushLocked(sync);
    }
}

void
CampaignJournal::flush(bool sync)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0)
        return;
    flushLocked(sync);
}

void
CampaignJournal::degradeLocked(int err, const char *op)
{
    // Ladder exhausted: stop persisting, let the campaign finish. The
    // unwritten suffix is dropped — those shards are deterministic and
    // simply re-run on resume; what must NOT happen is the campaign
    // dying over a sick disk or the status pretending durability.
    _failed = true;
    _status.degraded = true;
    _status.lastErrno = err;
    _status.lastOp = op;
    _buffer.clear();
    _recordsBuffered = 0;
}

void
CampaignJournal::backoffLocked(unsigned attempt)
{
    if (_policy.retryBackoffMs == 0)
        return;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<std::uint64_t>(_policy.retryBackoffMs)
        << (attempt - 1)));
}

bool
CampaignJournal::writeBufferLocked()
{
    // One write() per attempt for the whole batch; flushes always
    // carry whole lines, so a crash can tear at most the final
    // kernel-side write, which the loader tolerates. A short write —
    // injected or real — persists its prefix and the retry resumes at
    // the exact byte the kernel (or the fault plan) stopped at.
    unsigned failures = 0;
    while (!_buffer.empty()) {
        std::size_t allow = _buffer.size();
        int injected = 0;
        if (_policy.writeFault) {
            JournalWriteFate fate = _policy.writeFault(_buffer.size());
            if (fate.allow < allow || fate.err != 0) {
                allow = std::min(fate.allow, _buffer.size());
                injected = fate.err != 0 ? fate.err : EIO;
            }
        }
        int err = injected;
        if (allow > 0) {
            if (io::writeAll(_fd, _buffer.data(), allow))
                _buffer.erase(0, allow);
            else
                err = errno != 0 ? errno : EIO;
        }
        if (err == 0)
            continue; // full buffer out -> loop exits
        ++_status.failedWrites;
        _status.lastErrno = err;
        _status.lastOp = "write";
        ++failures;
        if (failures > _policy.maxWriteRetries) {
            degradeLocked(err, "write");
            return false;
        }
        ++_status.retries;
        backoffLocked(failures);
    }
    _recordsSinceSync += _recordsBuffered;
    _recordsBuffered = 0;
    return true;
}

bool
CampaignJournal::syncLocked()
{
    unsigned failures = 0;
    for (;;) {
        int err = _policy.syncFault ? _policy.syncFault() : 0;
        if (err == 0) {
#if DRF_JOURNAL_HAVE_FD
            if (::fsync(_fd) != 0)
                err = errno != 0 ? errno : EIO;
#endif
        }
        if (err == 0) {
            _recordsSinceSync = 0;
            return true;
        }
        ++_status.fsyncFailures;
        _status.lastErrno = err;
        _status.lastOp = "fsync";
        ++failures;
        if (failures > _policy.maxWriteRetries) {
            degradeLocked(err, "fsync");
            return false;
        }
        ++_status.retries;
        backoffLocked(failures);
    }
}

void
CampaignJournal::flushLocked(bool sync)
{
    if (_failed || _fd < 0)
        return;
    if (!_buffer.empty() && !writeBufferLocked())
        return;
    if (sync)
        syncLocked();
}

} // namespace drf
