#include "campaign/journal.hh"

#include <fstream>
#include <map>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DRF_JOURNAL_HAVE_FD 1
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#else
#define DRF_JOURNAL_HAVE_FD 0
#endif

#include "campaign/campaign_json.hh"
#include "campaign/json_value.hh"
#include "campaign/posix_io.hh"
#include "proto/directory.hh"
#include "proto/gpu_l1.hh"
#include "proto/gpu_l2.hh"

namespace drf
{

namespace
{

/**
 * (level, spec name) -> live spec singleton. Campaign shards only ever
 * carry these three grids (gpuShard/cpuShard in campaign.cc); the L1
 * level has one spec per protocol variant, distinguished by name.
 */
const TransitionSpec *
specForLevel(const std::string &level, const std::string &spec_name)
{
    if (level == "l1") {
        for (ProtocolKind kind :
             {ProtocolKind::Viper, ProtocolKind::Lrcc}) {
            const TransitionSpec &spec = GpuL1Cache::specFor(kind);
            if (spec.name() == spec_name)
                return &spec;
        }
        return nullptr;
    }
    if (level == "l2")
        return &GpuL2Cache::spec();
    if (level == "dir")
        return &Directory::spec();
    return nullptr;
}

void
writeGrid(JsonWriter &w, const char *level, const CoverageGrid &grid)
{
    const TransitionSpec &spec = grid.spec();
    w.beginObject();
    w.key("level").value(level);
    w.key("spec").value(spec.name());
    w.key("cells").beginArray();
    for (std::size_t e = 0; e < spec.numEvents(); ++e) {
        for (std::size_t s = 0; s < spec.numStates(); ++s) {
            std::uint64_t count = grid.count(e, s);
            if (count == 0)
                continue;
            w.beginArray();
            w.value(static_cast<std::uint64_t>(spec.cell(e, s)));
            w.value(count);
            w.endArray();
        }
    }
    w.endArray();
    w.endObject();
}

std::unique_ptr<CoverageGrid>
parseGrid(const JsonValue &v)
{
    if (v.type != JsonValue::Type::Object)
        return nullptr;
    const JsonValue *level = v.find("level");
    const JsonValue *spec_name = v.find("spec");
    const JsonValue *cells = v.find("cells");
    if (!level || !spec_name || !cells ||
        cells->type != JsonValue::Type::Array)
        return nullptr;
    const TransitionSpec *spec =
        specForLevel(level->string, spec_name->string);
    if (!spec || spec->name() != spec_name->string)
        return nullptr;
    auto grid = std::make_unique<CoverageGrid>(*spec);
    for (const JsonValue &cell : cells->array) {
        if (cell.type != JsonValue::Type::Array ||
            cell.array.size() != 2)
            return nullptr;
        std::uint64_t flat = cell.array[0].asU64();
        std::uint64_t count = cell.array[1].asU64();
        if (flat >= spec->numCells())
            return nullptr;
        std::size_t event = flat / spec->numStates();
        std::size_t state = flat % spec->numStates();
        grid->setCount(event, state, count);
    }
    return grid;
}

} // namespace

std::string
shardOutcomeToJson(const ShardOutcome &out)
{
    JsonWriter w;
    w.beginObject();
    w.key("v").value(1);
    w.key("kind").value("shard");
    w.key("index").value(static_cast<std::uint64_t>(out.index));
    w.key("name").value(out.name);
    w.key("seed").value(out.seed);
    w.key("attempts").value(out.attempts);
    w.key("passed").value(out.result.passed);
    w.key("failure_class")
        .value(failureClassName(out.result.failureClass));
    w.key("report").value(out.result.report);
    w.key("ticks").value(out.result.ticks);
    w.key("events").value(out.result.events);
    w.key("episodes").value(out.result.episodes);
    w.key("loads_checked").value(out.result.loadsChecked);
    w.key("stores_retired").value(out.result.storesRetired);
    w.key("atomics_checked").value(out.result.atomicsChecked);
    w.key("host_seconds").value(out.result.hostSeconds);
    w.key("grids").beginArray();
    if (out.l1)
        writeGrid(w, "l1", *out.l1);
    if (out.l2)
        writeGrid(w, "l2", *out.l2);
    if (out.dir)
        writeGrid(w, "dir", *out.dir);
    w.endArray();
    w.endObject();
    return w.str();
}

bool
parseShardOutcome(const std::string &line, ShardOutcome &out)
{
    JsonValue root;
    if (!parseJson(line, root) ||
        root.type != JsonValue::Type::Object)
        return false;

    const JsonValue *kind = root.find("kind");
    if (!kind || kind->string != "shard")
        return false;

    const JsonValue *index = root.find("index");
    const JsonValue *name = root.find("name");
    const JsonValue *seed = root.find("seed");
    const JsonValue *attempts = root.find("attempts");
    const JsonValue *passed = root.find("passed");
    const JsonValue *cls = root.find("failure_class");
    const JsonValue *report = root.find("report");
    const JsonValue *ticks = root.find("ticks");
    const JsonValue *events = root.find("events");
    const JsonValue *episodes = root.find("episodes");
    const JsonValue *loads = root.find("loads_checked");
    const JsonValue *stores = root.find("stores_retired");
    const JsonValue *atomics = root.find("atomics_checked");
    const JsonValue *host_seconds = root.find("host_seconds");
    if (!index || !name || !seed || !attempts || !passed || !cls ||
        !report || !ticks || !events || !episodes || !loads || !stores ||
        !atomics || !host_seconds)
        return false;

    std::optional<FailureClass> failure_class =
        parseFailureClass(cls->string);
    if (!failure_class)
        return false;

    ShardOutcome parsed;
    parsed.index = static_cast<std::size_t>(index->asU64());
    parsed.name = name->string;
    parsed.seed = seed->asU64();
    parsed.attempts = static_cast<unsigned>(attempts->asU64());
    parsed.result.passed = passed->boolean;
    parsed.result.failureClass = *failure_class;
    parsed.result.report = report->string;
    parsed.result.ticks = ticks->asU64();
    parsed.result.events = events->asU64();
    parsed.result.episodes = episodes->asU64();
    parsed.result.loadsChecked = loads->asU64();
    parsed.result.storesRetired = stores->asU64();
    parsed.result.atomicsChecked = atomics->asU64();
    parsed.result.hostSeconds = host_seconds->asDouble();

    if (const JsonValue *grids = root.find("grids")) {
        if (grids->type != JsonValue::Type::Array)
            return false;
        for (const JsonValue &g : grids->array) {
            const JsonValue *level = g.find("level");
            std::unique_ptr<CoverageGrid> grid = parseGrid(g);
            if (!level || !grid)
                return false;
            if (level->string == "l1")
                parsed.l1 = std::move(grid);
            else if (level->string == "l2")
                parsed.l2 = std::move(grid);
            else if (level->string == "dir")
                parsed.dir = std::move(grid);
            else
                return false;
        }
    }

    out = std::move(parsed);
    return true;
}

bool
loadJournal(const std::string &path, std::vector<ShardOutcome> &records)
{
    std::ifstream in(path);
    if (!in.is_open())
        return false;

    std::map<std::size_t, ShardOutcome> latest; // last record wins
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ShardOutcome out;
        // Unparseable lines — the header, a line truncated by an
        // interrupted write — are skipped, not fatal: a resumable
        // journal beats a strict one here.
        if (!parseShardOutcome(line, out))
            continue;
        latest[out.index] = std::move(out);
    }

    records.clear();
    records.reserve(latest.size());
    for (auto &[idx, out] : latest)
        records.push_back(std::move(out));
    return true;
}

CampaignJournal::CampaignJournal(const std::string &path)
    : CampaignJournal(path, Policy{})
{
}

CampaignJournal::CampaignJournal(const std::string &path,
                                 const Policy &policy)
    : _policy(policy)
{
    if (path.empty())
        return;
#if DRF_JOURNAL_HAVE_FD
    _fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
#endif
}

CampaignJournal::~CampaignJournal()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0)
        return;
    flushLocked(/*sync=*/true);
#if DRF_JOURNAL_HAVE_FD
    ::close(_fd);
#endif
    _fd = -1;
}

void
CampaignJournal::append(const std::string &line)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0 || _failed)
        return;
    _buffer.append(line);
    _buffer.push_back('\n');
    ++_recordsBuffered;
    if (_buffer.size() >= _policy.flushBytes) {
        bool sync = _policy.syncEveryRecords != 0 &&
                    _recordsSinceSync + _recordsBuffered >=
                        _policy.syncEveryRecords;
        flushLocked(sync);
    }
}

void
CampaignJournal::flush(bool sync)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0)
        return;
    flushLocked(sync);
}

void
CampaignJournal::flushLocked(bool sync)
{
    if (_failed)
        return;
    if (!_buffer.empty()) {
        // One write() for the whole batch; flushes always carry whole
        // lines, so a crash can tear at most the final kernel-side
        // write, which the loader tolerates.
        if (!io::writeAll(_fd, _buffer)) {
            _failed = true;
            return;
        }
        _buffer.clear();
        _recordsSinceSync += _recordsBuffered;
        _recordsBuffered = 0;
    }
    if (sync) {
#if DRF_JOURNAL_HAVE_FD
        ::fsync(_fd);
#endif
        _recordsSinceSync = 0;
    }
}

} // namespace drf
