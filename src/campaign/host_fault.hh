/**
 * @file
 * Host-fault injector: deterministic crash/hang/transient faults for
 * supervised campaign shards.
 *
 * proto/fault.hh validates the *tester* by corrupting simulated
 * protocol traffic; this header validates the *supervisor* by breaking
 * the host-side shard itself. A designated shard index can be armed to:
 *
 *  - Crash: raise(SIGSEGV) mid-shard — exercises fork isolation and
 *    HostCrash triage (and, in-process, the sanitizer/abort path);
 *  - Hang: spin in a sleep loop forever — exercises the watchdog
 *    deadline, child SIGKILL reaping, and HostTimeout triage;
 *  - Transient: throw ResourceExhaustedError until the configured
 *    attempt number is reached — exercises bounded retry. Keyed on
 *    currentShardAttempt(), which is a pure per-thread value that
 *    survives fork(), so the behavior is identical across isolation
 *    modes and needs no shared state between attempts.
 *
 * Faults trigger deterministically (by shard index, not probability) so
 * tests and the CI resilience drill can assert exact triage counts.
 */

#ifndef DRF_CAMPAIGN_HOST_FAULT_HH
#define DRF_CAMPAIGN_HOST_FAULT_HH

#include <chrono>
#include <csignal>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/supervisor.hh"

namespace drf
{

enum class HostFaultKind
{
    None,      ///< shard runs normally
    Crash,     ///< raise(SIGSEGV) before the shard body
    Hang,      ///< sleep forever; only a reaper ends it
    Transient, ///< throw ResourceExhaustedError on early attempts
};

inline const char *
hostFaultKindName(HostFaultKind kind)
{
    switch (kind) {
      case HostFaultKind::None: return "none";
      case HostFaultKind::Crash: return "crash";
      case HostFaultKind::Hang: return "hang";
      case HostFaultKind::Transient: return "transient";
    }
    return "invalid";
}

inline std::optional<HostFaultKind>
parseHostFaultKind(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(HostFaultKind::Transient);
         ++i) {
        HostFaultKind kind = static_cast<HostFaultKind>(i);
        if (name == hostFaultKindName(kind))
            return kind;
    }
    return std::nullopt;
}

/** Per-shard host-fault rule. */
struct HostFaultRule
{
    HostFaultKind kind = HostFaultKind::None;

    /** Transient only: attempts 1..failAttempts throw; the next attempt
     *  runs the shard normally. */
    unsigned failAttempts = 1;
};

/**
 * Arms host faults on shard indices and wraps ShardSpec runners so the
 * fault fires inside the supervised attempt (in the forked child when
 * fork isolation is on).
 */
class HostFaultInjector
{
  public:
    /** Arm @p kind on shard @p index. */
    void
    arm(std::size_t index, HostFaultKind kind, unsigned fail_attempts = 1)
    {
        _rules[index] = HostFaultRule{kind, fail_attempts};
    }

    /** Execute the armed fault action for @p rule (shard-side). */
    static void
    act(const HostFaultRule &rule)
    {
        switch (rule.kind) {
          case HostFaultKind::None:
            return;
          case HostFaultKind::Crash:
            std::raise(SIGSEGV);
            return;
          case HostFaultKind::Hang:
            for (;;)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
          case HostFaultKind::Transient:
            if (currentShardAttempt() <= rule.failAttempts) {
                throw ResourceExhaustedError(
                    "injected transient host fault (attempt " +
                    std::to_string(currentShardAttempt()) + " of " +
                    std::to_string(rule.failAttempts) +
                    " designated to fail)");
            }
            return;
        }
    }

    /**
     * Wrap the runners of every armed shard in @p shards. Unarmed
     * shards are untouched; armed shards keep their name/seed/preset
     * (so triage, journaling, and repro capture still identify them).
     */
    void
    armShards(std::vector<ShardSpec> &shards) const
    {
        for (const auto &entry : _rules) {
            if (entry.first >= shards.size())
                continue;
            if (entry.second.kind == HostFaultKind::None)
                continue;
            ShardSpec &spec = shards[entry.first];
            HostFaultRule rule = entry.second;
            auto inner = std::move(spec.run);
            spec.run = [rule, inner = std::move(inner)]() {
                HostFaultInjector::act(rule);
                return inner();
            };
        }
    }

  private:
    std::map<std::size_t, HostFaultRule> _rules;
};

} // namespace drf

#endif // DRF_CAMPAIGN_HOST_FAULT_HH
