/**
 * @file
 * Minimal JSON value + recursive-descent parser.
 *
 * Counterpart of JsonWriter (campaign_json.hh), scoped to the flat
 * schemas this repo emits: journal shard records and fleet protocol
 * payloads. Numbers keep their raw text so 64-bit tick counts
 * round-trip exactly (no double intermediate). The repo deliberately
 * has no third-party JSON dependency; this parser grew out of the
 * journal loader and moved here once the fleet wire protocol became
 * its second consumer.
 */

#ifndef DRF_CAMPAIGN_JSON_VALUE_HH
#define DRF_CAMPAIGN_JSON_VALUE_HH

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace drf
{

struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    std::string raw;    ///< number text
    std::string string; ///< decoded string
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }

    std::uint64_t
    asU64() const
    {
        return std::strtoull(raw.c_str(), nullptr, 10);
    }

    double
    asDouble() const
    {
        return std::strtod(raw.c_str(), nullptr);
    }
};

/**
 * Parse @p text into @p out. Returns false on malformed input or
 * trailing garbage.
 */
bool parseJson(const std::string &text, JsonValue &out);

} // namespace drf

#endif // DRF_CAMPAIGN_JSON_VALUE_HH
