#include "campaign/posix_io.hh"

#include <cerrno>
#include <csignal>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define DRF_HAVE_POSIX_IO 1
#else
#define DRF_HAVE_POSIX_IO 0
#endif

namespace drf::io
{

bool
writeAll(int fd, const void *data, std::size_t len)
{
#if DRF_HAVE_POSIX_IO
    const char *p = static_cast<const char *>(data);
    std::size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
#else
    (void)fd;
    (void)data;
    (void)len;
    return false;
#endif
}

bool
writeAll(int fd, const std::string &data)
{
    return writeAll(fd, data.data(), data.size());
}

bool
readExact(int fd, void *buf, std::size_t len)
{
#if DRF_HAVE_POSIX_IO
    char *p = static_cast<char *>(buf);
    std::size_t off = 0;
    while (off < len) {
        ssize_t n = ::read(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-object
        off += static_cast<std::size_t>(n);
    }
    return true;
#else
    (void)fd;
    (void)buf;
    (void)len;
    return false;
#endif
}

long
readSome(int fd, void *buf, std::size_t len)
{
#if DRF_HAVE_POSIX_IO
    for (;;) {
        ssize_t n = ::read(fd, buf, len);
        if (n < 0 && errno == EINTR)
            continue;
        return static_cast<long>(n);
    }
#else
    (void)fd;
    (void)buf;
    (void)len;
    return -1;
#endif
}

std::string
readToEof(int fd)
{
    std::string data;
#if DRF_HAVE_POSIX_IO
    char buf[4096];
    for (;;) {
        long n = readSome(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        data.append(buf, static_cast<std::size_t>(n));
    }
#else
    (void)fd;
#endif
    return data;
}

void
ignoreSigpipe()
{
#if DRF_HAVE_POSIX_IO
    static std::once_flag once;
    std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
#endif
}

} // namespace drf::io
