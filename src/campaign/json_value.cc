#include "campaign/json_value.hh"

#include <cctype>

namespace drf
{

namespace
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return _pos == _text.size();
    }

  private:
    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (_pos >= _text.size() || _text[_pos] != c)
            return false;
        ++_pos;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (_pos >= _text.size())
            return false;
        char c = _text[_pos];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return parseString(out.string);
        }
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n') {
            if (!parseLiteral("null"))
                return false;
            out.type = JsonValue::Type::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (_text.compare(_pos, n, lit) != 0)
            return false;
        _pos += n;
        return true;
    }

    bool
    parseBool(JsonValue &out)
    {
        out.type = JsonValue::Type::Bool;
        if (parseLiteral("true")) {
            out.boolean = true;
            return true;
        }
        if (parseLiteral("false")) {
            out.boolean = false;
            return true;
        }
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = _pos;
        if (_pos < _text.size() &&
            (_text[_pos] == '-' || _text[_pos] == '+'))
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '-' ||
                _text[_pos] == '+'))
            ++_pos;
        if (_pos == start)
            return false;
        out.type = JsonValue::Type::Number;
        out.raw = _text.substr(start, _pos - start);
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (_pos < _text.size()) {
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (_pos >= _text.size())
                return false;
            char esc = _text[_pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    return false;
                unsigned code = static_cast<unsigned>(std::strtoul(
                    _text.substr(_pos, 4).c_str(), nullptr, 16));
                _pos += 4;
                // The escaper only emits \u00xx for control bytes.
                out.push_back(static_cast<char>(code & 0xff));
                break;
              }
              default: return false;
            }
        }
        return false;
    }

    bool
    parseArray(JsonValue &out)
    {
        if (!consume('['))
            return false;
        out.type = JsonValue::Type::Array;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue elem;
            if (!parseValue(elem))
                return false;
            out.array.push_back(std::move(elem));
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        if (!consume('{'))
            return false;
        out.type = JsonValue::Type::Object;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out)
{
    return JsonParser(text).parse(out);
}

} // namespace drf
