#include "campaign/campaign.hh"

#include <algorithm>
#include <chrono>
#include <exception>

#include "campaign/thread_pool.hh"
#include "system/apu_system.hh"
#include "tester/cpu_tester.hh"

namespace drf
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

ShardMerge::ShardMerge(const CampaignConfig &cfg,
                       std::size_t shards_planned)
    : _cfg(cfg)
{
    _result.shardsPlanned = shards_planned;
}

void
ShardMerge::setJobs(unsigned jobs)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _result.jobs = jobs;
}

bool
ShardMerge::stopRequested() const
{
    return _stop.load(std::memory_order_acquire);
}

void
ShardMerge::requestStop()
{
    _stop.store(true, std::memory_order_release);
}

void
ShardMerge::markInterrupted()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _result.interrupted = true;
    }
    requestStop();
}

void
ShardMerge::addSkipped(std::size_t count)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _result.shardsSkipped += count;
}

bool
ShardMerge::saturatedLocked() const
{
    if (_cfg.saturationPct <= 0.0)
        return false;
    if (_l1.empty() && _l2.empty())
        return false;
    if (!_l1.empty() &&
        _l1.coveragePct(_cfg.coverageTestType) < _cfg.saturationPct)
        return false;
    if (!_l2.empty() &&
        _l2.coveragePct(_cfg.coverageTestType) < _cfg.saturationPct)
        return false;
    return true;
}

void
ShardMerge::add(ShardOutcome &&out, double wall_seconds, bool resumed)
{
    std::lock_guard<std::mutex> lock(_mutex);
    CampaignResult &res = _result;
    ++res.shardsRun;
    if (resumed)
        ++res.shardsResumed;
    res.totalTicks += out.result.ticks;
    res.totalEvents += out.result.events;
    res.totalEpisodes += out.result.episodes;
    res.totalLoadsChecked += out.result.loadsChecked;
    res.totalStoresRetired += out.result.storesRetired;
    res.totalAtomicsChecked += out.result.atomicsChecked;
    res.shardSecondsSum += out.result.hostSeconds;
    res.retriesPerformed += out.attempts - 1;
    switch (out.result.failureClass) {
      case FailureClass::HostCrash: ++res.hostCrashes; break;
      case FailureClass::HostTimeout: ++res.hostTimeouts; break;
      case FailureClass::ResourceExhausted:
        ++res.resourceExhausted;
        break;
      default: break;
    }

    std::size_t new_cells = 0;
    if (out.l1)
        new_cells += _l1.add(*out.l1);
    if (out.l2)
        new_cells += _l2.add(*out.l2);
    if (out.dir)
        new_cells += _dir.add(*out.dir);

    CoveragePoint point;
    point.shardsCompleted = res.shardsRun;
    point.l1Pct = _l1.coveragePct(_cfg.coverageTestType);
    point.l2Pct = _l2.coveragePct(_cfg.coverageTestType);
    point.cumulativeEvents = res.totalEvents;
    point.wallSeconds = wall_seconds;
    point.shardName = out.name;
    point.shardSeed = out.seed;
    point.shardEpisodes = out.result.episodes;
    point.shardActions = out.result.loadsChecked +
                         out.result.storesRetired +
                         out.result.atomicsChecked;
    point.cumulativeEpisodes = res.totalEpisodes;
    point.cumulativeActions = res.totalLoadsChecked +
                              res.totalStoresRetired +
                              res.totalAtomicsChecked;
    point.newCells = new_cells;
    res.saturationCurve.push_back(point);

    if (!out.result.passed) {
        if (!res.firstFailure || out.index < res.firstFailure->index) {
            res.firstFailure = ShardFailure{
                out.name, out.seed, out.index, out.result.report,
                out.result.failureClass};
        }
        bool host = isHostFailureClass(out.result.failureClass);
        if (host ? _cfg.stopOnHostFailure : _cfg.stopOnFailure)
            requestStop();
    }
    if (!res.shardsToSaturation && saturatedLocked()) {
        res.shardsToSaturation = res.shardsRun;
        requestStop();
    }
    if (_cfg.keepOutcomes)
        res.outcomes.push_back(std::move(out));
}

CampaignResult
ShardMerge::take(double wall_seconds)
{
    CampaignResult &res = _result;
    res.passed = !res.firstFailure.has_value();
    res.wallSeconds = wall_seconds;
    if (res.wallSeconds > 0.0) {
        res.episodesPerSec =
            static_cast<double>(res.totalEpisodes) / res.wallSeconds;
        res.eventsPerSec =
            static_cast<double>(res.totalEvents) / res.wallSeconds;
    }
    if (!_l1.empty())
        res.l1Union = _l1.grid();
    if (!_l2.empty())
        res.l2Union = _l2.grid();
    if (!_dir.empty())
        res.dirUnion = _dir.grid();
    std::sort(res.outcomes.begin(), res.outcomes.end(),
              [](const ShardOutcome &a, const ShardOutcome &b) {
                  return a.index < b.index;
              });
    return std::move(_result);
}

CampaignResult
runCampaign(std::vector<ShardSpec> shards, const CampaignConfig &cfg)
{
    ShardMerge merge(cfg, shards.size());
    if (shards.empty())
        return merge.take(0.0);

    unsigned jobs = cfg.jobs != 0 ? cfg.jobs : ThreadPool::defaultThreads();
    jobs = std::min<unsigned>(jobs,
                              static_cast<unsigned>(shards.size()));
    merge.setJobs(jobs);

    Clock::time_point start = Clock::now();
    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < shards.size(); ++i) {
            // The spec is moved into the job; the pool owns it until run.
            pool.submit([&merge, start, i,
                         spec = std::move(shards[i])]() mutable {
                if (merge.stopRequested()) {
                    merge.addSkipped();
                    return;
                }

                ShardOutcome out;
                try {
                    out = spec.run();
                } catch (const std::exception &e) {
                    // Shard isolation: anything a tester failed to
                    // convert itself becomes a structured failure here.
                    out.result.passed = false;
                    out.result.failureClass = FailureClass::Other;
                    out.result.report = e.what();
                } catch (...) {
                    out.result.passed = false;
                    out.result.failureClass = FailureClass::Other;
                    out.result.report = "unknown shard exception";
                }
                if (out.name.empty())
                    out.name = spec.name;
                out.seed = spec.seed;
                out.index = i;

                merge.add(std::move(out), secondsSince(start));
            });
        }
        pool.waitIdle();
    }

    return merge.take(secondsSince(start));
}

ShardSpec
gpuShard(const GpuTestPreset &preset)
{
    ShardSpec spec;
    spec.name = preset.name;
    spec.seed = preset.tester.seed;
    spec.gpuPreset = std::make_shared<const GpuTestPreset>(preset);
    spec.run = [p = spec.gpuPreset]() {
        const GpuTestPreset &preset = *p;
        ApuSystem sys(preset.system);
        GpuTester tester(sys, preset.tester);
        ShardOutcome out;
        out.name = preset.name;
        out.result = tester.run();
        out.l1 = std::make_unique<CoverageGrid>(sys.l1CoverageUnion());
        out.l2 = std::make_unique<CoverageGrid>(sys.l2CoverageUnion());
        out.dir =
            std::make_unique<CoverageGrid>(sys.directory().coverage());
        return out;
    };
    return spec;
}

ShardSpec
cpuShard(const CpuTestPreset &preset)
{
    ShardSpec spec;
    spec.name = preset.name;
    spec.seed = preset.tester.seed;
    spec.run = [preset]() {
        ApuSystem sys(preset.system);
        CpuTester tester(sys, preset.tester);
        ShardOutcome out;
        out.name = preset.name;
        out.result = tester.run();
        out.dir =
            std::make_unique<CoverageGrid>(sys.directory().coverage());
        return out;
    };
    return spec;
}

std::vector<ShardSpec>
gpuSeedSweep(const GpuTestPreset &base, std::uint64_t first_seed,
             std::size_t num_seeds)
{
    std::vector<ShardSpec> shards;
    shards.reserve(num_seeds);
    for (std::size_t i = 0; i < num_seeds; ++i) {
        GpuTestPreset preset = base;
        preset.tester.seed = first_seed + i;
        preset.name =
            base.name + "/seed" + std::to_string(preset.tester.seed);
        shards.push_back(gpuShard(preset));
    }
    return shards;
}

} // namespace drf
