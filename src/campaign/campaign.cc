#include "campaign/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>

#include "campaign/thread_pool.hh"
#include "system/apu_system.hh"
#include "tester/cpu_tester.hh"

namespace drf
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Shared accumulation state, guarded by one mutex. */
struct Merge
{
    std::mutex mutex;
    CampaignResult result;
    CoverageAccumulator l1;
    CoverageAccumulator l2;
    CoverageAccumulator dir;
    std::atomic<bool> stop{false};
};

/** True once every observed coverage level reached the threshold. */
bool
saturated(const Merge &merge, const CampaignConfig &cfg)
{
    if (cfg.saturationPct <= 0.0)
        return false;
    if (merge.l1.empty() && merge.l2.empty())
        return false;
    if (!merge.l1.empty() &&
        merge.l1.coveragePct(cfg.coverageTestType) < cfg.saturationPct)
        return false;
    if (!merge.l2.empty() &&
        merge.l2.coveragePct(cfg.coverageTestType) < cfg.saturationPct)
        return false;
    return true;
}

} // namespace

CampaignResult
runCampaign(std::vector<ShardSpec> shards, const CampaignConfig &cfg)
{
    Merge merge;
    merge.result.shardsPlanned = shards.size();
    if (shards.empty())
        return std::move(merge.result);

    unsigned jobs = cfg.jobs != 0 ? cfg.jobs : ThreadPool::defaultThreads();
    jobs = std::min<unsigned>(jobs,
                              static_cast<unsigned>(shards.size()));
    merge.result.jobs = jobs;

    Clock::time_point start = Clock::now();
    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < shards.size(); ++i) {
            // The spec is moved into the job; the pool owns it until run.
            pool.submit([&merge, &cfg, start, i,
                         spec = std::move(shards[i])]() mutable {
                if (merge.stop.load(std::memory_order_acquire)) {
                    std::lock_guard<std::mutex> lock(merge.mutex);
                    ++merge.result.shardsSkipped;
                    return;
                }

                ShardOutcome out;
                try {
                    out = spec.run();
                } catch (const std::exception &e) {
                    // Shard isolation: anything a tester failed to
                    // convert itself becomes a structured failure here.
                    out.result.passed = false;
                    out.result.report = e.what();
                } catch (...) {
                    out.result.passed = false;
                    out.result.report = "unknown shard exception";
                }
                if (out.name.empty())
                    out.name = spec.name;
                out.seed = spec.seed;
                out.index = i;

                std::lock_guard<std::mutex> lock(merge.mutex);
                CampaignResult &res = merge.result;
                ++res.shardsRun;
                res.totalTicks += out.result.ticks;
                res.totalEvents += out.result.events;
                res.totalEpisodes += out.result.episodes;
                res.totalLoadsChecked += out.result.loadsChecked;
                res.totalStoresRetired += out.result.storesRetired;
                res.totalAtomicsChecked += out.result.atomicsChecked;
                res.shardSecondsSum += out.result.hostSeconds;

                std::size_t new_cells = 0;
                if (out.l1)
                    new_cells += merge.l1.add(*out.l1);
                if (out.l2)
                    new_cells += merge.l2.add(*out.l2);
                if (out.dir)
                    new_cells += merge.dir.add(*out.dir);

                CoveragePoint point;
                point.shardsCompleted = res.shardsRun;
                point.l1Pct = merge.l1.coveragePct(cfg.coverageTestType);
                point.l2Pct = merge.l2.coveragePct(cfg.coverageTestType);
                point.cumulativeEvents = res.totalEvents;
                point.wallSeconds = secondsSince(start);
                point.shardName = out.name;
                point.shardSeed = out.seed;
                point.shardEpisodes = out.result.episodes;
                point.shardActions = out.result.loadsChecked +
                                     out.result.storesRetired +
                                     out.result.atomicsChecked;
                point.cumulativeEpisodes = res.totalEpisodes;
                point.cumulativeActions = res.totalLoadsChecked +
                                          res.totalStoresRetired +
                                          res.totalAtomicsChecked;
                point.newCells = new_cells;
                res.saturationCurve.push_back(point);

                if (!out.result.passed) {
                    if (!res.firstFailure ||
                        out.index < res.firstFailure->index) {
                        res.firstFailure = ShardFailure{
                            out.name, out.seed, out.index,
                            out.result.report};
                    }
                    if (cfg.stopOnFailure)
                        merge.stop.store(true,
                                         std::memory_order_release);
                }
                if (!res.shardsToSaturation && saturated(merge, cfg)) {
                    res.shardsToSaturation = res.shardsRun;
                    merge.stop.store(true, std::memory_order_release);
                }
                if (cfg.keepOutcomes)
                    res.outcomes.push_back(std::move(out));
            });
        }
        pool.waitIdle();
    }

    CampaignResult &res = merge.result;
    res.passed = !res.firstFailure.has_value();
    res.wallSeconds = secondsSince(start);
    if (res.wallSeconds > 0.0) {
        res.episodesPerSec =
            static_cast<double>(res.totalEpisodes) / res.wallSeconds;
        res.eventsPerSec =
            static_cast<double>(res.totalEvents) / res.wallSeconds;
    }
    if (!merge.l1.empty())
        res.l1Union = merge.l1.grid();
    if (!merge.l2.empty())
        res.l2Union = merge.l2.grid();
    if (!merge.dir.empty())
        res.dirUnion = merge.dir.grid();
    std::sort(res.outcomes.begin(), res.outcomes.end(),
              [](const ShardOutcome &a, const ShardOutcome &b) {
                  return a.index < b.index;
              });
    return std::move(merge.result);
}

ShardSpec
gpuShard(const GpuTestPreset &preset)
{
    ShardSpec spec;
    spec.name = preset.name;
    spec.seed = preset.tester.seed;
    spec.run = [preset]() {
        ApuSystem sys(preset.system);
        GpuTester tester(sys, preset.tester);
        ShardOutcome out;
        out.name = preset.name;
        out.result = tester.run();
        out.l1 = std::make_unique<CoverageGrid>(sys.l1CoverageUnion());
        out.l2 = std::make_unique<CoverageGrid>(sys.l2CoverageUnion());
        out.dir =
            std::make_unique<CoverageGrid>(sys.directory().coverage());
        return out;
    };
    return spec;
}

ShardSpec
cpuShard(const CpuTestPreset &preset)
{
    ShardSpec spec;
    spec.name = preset.name;
    spec.seed = preset.tester.seed;
    spec.run = [preset]() {
        ApuSystem sys(preset.system);
        CpuTester tester(sys, preset.tester);
        ShardOutcome out;
        out.name = preset.name;
        out.result = tester.run();
        out.dir =
            std::make_unique<CoverageGrid>(sys.directory().coverage());
        return out;
    };
    return spec;
}

std::vector<ShardSpec>
gpuSeedSweep(const GpuTestPreset &base, std::uint64_t first_seed,
             std::size_t num_seeds)
{
    std::vector<ShardSpec> shards;
    shards.reserve(num_seeds);
    for (std::size_t i = 0; i < num_seeds; ++i) {
        GpuTestPreset preset = base;
        preset.tester.seed = first_seed + i;
        preset.name =
            base.name + "/seed" + std::to_string(preset.tester.seed);
        shards.push_back(gpuShard(preset));
    }
    return shards;
}

} // namespace drf
