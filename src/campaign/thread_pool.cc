#include "campaign/thread_pool.hh"

#include <algorithm>
#include <cassert>

namespace drf
{

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, hw);
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    _workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _workers.push_back(std::make_unique<Worker>());
    _threads.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    {
        std::lock_guard<std::mutex> lock(_sleepMutex);
        _stopping.store(true, std::memory_order_relaxed);
    }
    _wake.notify_all();
    for (auto &thread : _threads)
        thread.join();
}

void
ThreadPool::submit(Job job)
{
    assert(job && "submitting an empty job");
    _inFlight.fetch_add(1, std::memory_order_relaxed);
    std::size_t idx = _nextWorker.fetch_add(1, std::memory_order_relaxed)
                      % _workers.size();
    {
        std::lock_guard<std::mutex> lock(_workers[idx]->mutex);
        _workers[idx]->jobs.push_back(std::move(job));
    }
    {
        // Lock-then-notify pairs with the worker's check-then-wait.
        std::lock_guard<std::mutex> lock(_sleepMutex);
    }
    _wake.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(_sleepMutex);
    _idle.wait(lock, [this] {
        return _inFlight.load(std::memory_order_acquire) == 0;
    });
}

std::size_t
ThreadPool::cancelPending()
{
    std::size_t dropped = 0;
    for (auto &worker : _workers) {
        std::deque<Job> victims;
        {
            std::lock_guard<std::mutex> lock(worker->mutex);
            victims.swap(worker->jobs);
        }
        // Destroy the captured state outside the worker lock.
        dropped += victims.size();
    }
    if (dropped != 0 &&
        _inFlight.fetch_sub(dropped, std::memory_order_acq_rel) ==
            dropped) {
        std::lock_guard<std::mutex> lock(_sleepMutex);
        _idle.notify_all();
    }
    return dropped;
}

bool
ThreadPool::popOwn(unsigned idx, Job &out)
{
    Worker &w = *_workers[idx];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.jobs.empty())
        return false;
    out = std::move(w.jobs.front());
    w.jobs.pop_front();
    return true;
}

bool
ThreadPool::steal(unsigned idx, Job &out)
{
    std::size_t n = _workers.size();
    for (std::size_t off = 1; off < n; ++off) {
        Worker &victim = *_workers[(idx + off) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.jobs.empty()) {
            out = std::move(victim.jobs.back());
            victim.jobs.pop_back();
            return true;
        }
    }
    return false;
}

bool
ThreadPool::anyQueued() const
{
    for (const auto &worker : _workers) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        if (!worker->jobs.empty())
            return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned idx)
{
    for (;;) {
        Job job;
        if (popOwn(idx, job) || steal(idx, job)) {
            job();
            job = Job(); // release captures before accounting
            if (_inFlight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(_sleepMutex);
                _idle.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lock(_sleepMutex);
        if (_stopping.load(std::memory_order_relaxed))
            return;
        if (anyQueued())
            continue; // raced with a submit; retry without sleeping
        _wake.wait(lock);
    }
}

} // namespace drf
