/**
 * @file
 * Work-stealing thread pool for campaign shards.
 *
 * Each worker owns a deque: it pops its own work from the front (oldest
 * first, so a single-worker pool runs jobs in exact submission order —
 * which makes jobs=1 campaigns reproduce the serial schedule) and steals
 * from the back of a sibling's deque when empty, so a long-running shard
 * on one worker never strands queued shards behind it. Submission
 * round-robins across workers to seed the deques evenly.
 *
 * Jobs must not let exceptions escape (an escaping exception terminates
 * the process, as with any detached thread); the campaign runner wraps
 * every shard in a catch-all that converts failures into structured
 * results.
 */

#ifndef DRF_CAMPAIGN_THREAD_POOL_HH
#define DRF_CAMPAIGN_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace drf
{

class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /**
     * @param threads Worker count; 0 means hardware concurrency.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /** Enqueue one job. Safe to call from any thread, including jobs. */
    void submit(Job job);

    /** Block until every submitted job has finished. */
    void waitIdle();

    /**
     * Drop every queued-but-unstarted job and return how many were
     * dropped. Jobs already executing finish normally. The campaign
     * supervisor uses this for SIGINT/SIGTERM graceful shutdown: the
     * queue empties wholesale instead of each job being scheduled just
     * to observe the stop flag.
     */
    std::size_t cancelPending();

    /** Hardware concurrency with a floor of 1. */
    static unsigned defaultThreads();

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<Job> jobs;
    };

    void workerLoop(unsigned idx);
    bool popOwn(unsigned idx, Job &out);
    bool steal(unsigned idx, Job &out);
    bool anyQueued() const;

    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    // _sleepMutex guards the sleep/wake handshake: submitters notify
    // under it, workers re-check the deques under it before waiting, so
    // a submission can never slip between check and wait.
    mutable std::mutex _sleepMutex;
    std::condition_variable _wake;
    std::condition_variable _idle;

    std::atomic<std::uint64_t> _inFlight{0}; ///< submitted, not finished
    std::atomic<std::uint64_t> _nextWorker{0};
    std::atomic<bool> _stopping{false};
};

} // namespace drf

#endif // DRF_CAMPAIGN_THREAD_POOL_HH
