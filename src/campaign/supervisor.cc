#include "campaign/supervisor.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DRF_SUPERVISOR_HAVE_FORK 1
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define DRF_SUPERVISOR_HAVE_FORK 0
#endif

#include "campaign/campaign_json.hh"
#include "campaign/journal.hh"
#include "campaign/thread_pool.hh"
#include "trace/repro.hh"
#include "trace/trace_file.hh"

namespace drf
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

thread_local unsigned t_shardAttempt = 1;

// Set by the signal handler; polled by the watchdog thread. Async-
// signal-safe by construction (one relaxed atomic store).
std::atomic<int> g_signalCaught{0};

void
onTerminationSignal(int sig)
{
    g_signalCaught.store(sig, std::memory_order_relaxed);
}

/** RAII SIGINT/SIGTERM handler installation (no-op when disabled). */
class SignalGuard
{
  public:
    explicit SignalGuard(bool enable) : _enabled(enable)
    {
        if (!_enabled)
            return;
        g_signalCaught.store(0, std::memory_order_relaxed);
        _oldInt = std::signal(SIGINT, onTerminationSignal);
        _oldTerm = std::signal(SIGTERM, onTerminationSignal);
    }

    ~SignalGuard()
    {
        if (!_enabled)
            return;
        std::signal(SIGINT, _oldInt == SIG_ERR ? SIG_DFL : _oldInt);
        std::signal(SIGTERM, _oldTerm == SIG_ERR ? SIG_DFL : _oldTerm);
    }

    SignalGuard(const SignalGuard &) = delete;
    SignalGuard &operator=(const SignalGuard &) = delete;

  private:
    bool _enabled;
    void (*_oldInt)(int) = SIG_DFL;
    void (*_oldTerm)(int) = SIG_DFL;
};

/** One shard attempt under watch: its deadline and how to reap it. */
struct WatchedTask
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;     ///< attempt finished (any way)
    bool timedOut = false; ///< reaped by the watchdog
    Clock::time_point deadline{};
#if DRF_SUPERVISOR_HAVE_FORK
    pid_t childPid = -1; ///< fork mode: the child to SIGKILL
#endif
    ShardOutcome outcome; ///< in-process mode result slot
};

/** Shared supervisor state threaded through workers + watchdog. */
struct SupervisorState
{
    const SupervisorConfig &cfg;
    ShardMerge merge;
    ThreadPool *pool = nullptr;

    std::mutex watchMutex;
    std::vector<std::shared_ptr<WatchedTask>> watched;

    std::atomic<bool> shutdown{false};
    bool interruptHandled = false; ///< watchdog thread only
};

void
registerTask(SupervisorState &st,
             const std::shared_ptr<WatchedTask> &task)
{
    std::lock_guard<std::mutex> lock(st.watchMutex);
    st.watched.push_back(task);
}

void
markTaskDone(const std::shared_ptr<WatchedTask> &task)
{
    std::lock_guard<std::mutex> lock(task->mutex);
    task->done = true;
}

/**
 * The supervisor watchdog: scans deadlines (reaping overdue attempts)
 * and turns a caught termination signal into a graceful shutdown —
 * queued shards cancelled wholesale, running shards left to finish.
 */
void
watchdogLoop(SupervisorState &st)
{
    while (!st.shutdown.load(std::memory_order_acquire)) {
        if (st.cfg.handleSignals &&
            g_signalCaught.load(std::memory_order_relaxed) != 0 &&
            !st.interruptHandled) {
            st.interruptHandled = true;
            st.merge.markInterrupted();
            st.merge.addSkipped(st.pool->cancelPending());
        }

        Clock::time_point now = Clock::now();
        {
            std::lock_guard<std::mutex> lock(st.watchMutex);
            for (auto &task : st.watched) {
                std::lock_guard<std::mutex> tl(task->mutex);
                if (task->done || task->timedOut)
                    continue;
                if (now < task->deadline)
                    continue;
                task->timedOut = true;
#if DRF_SUPERVISOR_HAVE_FORK
                if (task->childPid > 0)
                    ::kill(task->childPid, SIGKILL);
#endif
                task->cv.notify_all();
            }
            st.watched.erase(
                std::remove_if(st.watched.begin(), st.watched.end(),
                               [](const auto &task) {
                                   std::lock_guard<std::mutex> tl(
                                       task->mutex);
                                   return task->done;
                               }),
                st.watched.end());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

/** Build a host-level outcome (no stats, no grids — just triage). */
ShardOutcome
hostOutcome(const ShardSpec &spec, std::size_t index, unsigned attempt,
            FailureClass cls, std::string report)
{
    ShardOutcome out;
    out.name = spec.name;
    out.seed = spec.seed;
    out.index = index;
    out.attempts = attempt;
    out.result.passed = false;
    out.result.failureClass = cls;
    out.result.report = std::move(report);
    return out;
}

/**
 * In-process exception barrier: run the shard on the calling thread,
 * converting escapes into host triage (uncaught throw -> HostCrash,
 * bad_alloc -> ResourceExhausted, ResourceExhaustedError -> retriable).
 */
ShardOutcome
runInProcess(const ShardSpec &spec, std::size_t index, unsigned attempt)
{
    t_shardAttempt = attempt;
    ShardOutcome out;
    try {
        out = spec.run();
    } catch (const ResourceExhaustedError &e) {
        out = hostOutcome(spec, index, attempt,
                          FailureClass::ResourceExhausted, e.what());
    } catch (const std::bad_alloc &) {
        out = hostOutcome(spec, index, attempt,
                          FailureClass::ResourceExhausted,
                          "shard ran out of memory (std::bad_alloc)");
    } catch (const std::exception &e) {
        out = hostOutcome(spec, index, attempt, FailureClass::HostCrash,
                          std::string("uncaught shard exception: ") +
                              e.what());
    } catch (...) {
        out = hostOutcome(spec, index, attempt, FailureClass::HostCrash,
                          "uncaught shard exception of unknown type");
    }
    t_shardAttempt = 1;
    if (out.name.empty())
        out.name = spec.name;
    out.seed = spec.seed;
    out.index = index;
    out.attempts = attempt;
    return out;
}

/**
 * In-process attempt with a wall-clock deadline: the shard runs on a
 * dedicated thread; on timeout the thread is abandoned (detached) and
 * the shard becomes a HostTimeout. The thread owns copies of everything
 * it touches (spec, task), so abandoning it is safe — it can only
 * waste one core until the process exits, which is the best that can
 * be done for a truly wedged shard without process isolation.
 */
ShardOutcome
runWithDeadline(SupervisorState &st, const ShardSpec &spec,
                std::size_t index, unsigned attempt)
{
    auto task = std::make_shared<WatchedTask>();
    task->deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                st.cfg.shardTimeoutSeconds));
    registerTask(st, task);

    std::thread worker([task, spec, index, attempt]() {
        ShardOutcome out = runInProcess(spec, index, attempt);
        std::lock_guard<std::mutex> lock(task->mutex);
        task->outcome = std::move(out);
        task->done = true;
        task->cv.notify_all();
    });

    std::unique_lock<std::mutex> lock(task->mutex);
    task->cv.wait(lock,
                  [&] { return task->done || task->timedOut; });
    if (task->done) {
        lock.unlock();
        worker.join();
        return std::move(task->outcome);
    }
    lock.unlock();
    worker.detach();
    return hostOutcome(
        spec, index, attempt, FailureClass::HostTimeout,
        "shard exceeded its wall-clock deadline (" +
            std::to_string(st.cfg.shardTimeoutSeconds) +
            " s); worker thread abandoned");
}

#if DRF_SUPERVISOR_HAVE_FORK

// Serializes the pipe()+fork()+close() window so a concurrently forked
// child can never inherit another shard's pipe write end (which would
// keep that shard's parent blocked on read() past its child's death).
std::mutex g_forkMutex;

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
readAll(int fd)
{
    std::string data;
    char buf[4096];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        data.append(buf, static_cast<std::size_t>(n));
    }
    return data;
}

/**
 * Fork-isolated attempt: the child runs the shard under the in-process
 * barrier and reports the outcome over a pipe as one journal-format
 * line; the parent triages the wait status. Anything that kills the
 * child — segfault, abort, a sanitizer's _exit(1) — is a HostCrash; a
 * watchdog SIGKILL is a HostTimeout; fork/pipe trouble or a torn
 * outcome line is ResourceExhausted (retriable).
 */
ShardOutcome
runForked(SupervisorState &st, const ShardSpec &spec, std::size_t index,
          unsigned attempt)
{
    int fds[2] = {-1, -1};
    pid_t pid = -1;
    {
        std::lock_guard<std::mutex> lock(g_forkMutex);
        if (::pipe(fds) != 0) {
            return hostOutcome(spec, index, attempt,
                               FailureClass::ResourceExhausted,
                               std::string("pipe() failed: ") +
                                   std::strerror(errno));
        }
        t_shardAttempt = attempt; // inherited across fork()
        pid = ::fork();
        if (pid == 0) {
            // Child: run the shard, ship the outcome, _exit without
            // running atexit/static destructors (the parent owns them).
            ::close(fds[0]);
            ShardOutcome out = runInProcess(spec, index, attempt);
            std::string line = shardOutcomeToJson(out);
            line.push_back('\n');
            writeAll(fds[1], line);
            ::close(fds[1]);
            ::_exit(0);
        }
        t_shardAttempt = 1;
        ::close(fds[1]);
        if (pid < 0) {
            ::close(fds[0]);
            return hostOutcome(spec, index, attempt,
                               FailureClass::ResourceExhausted,
                               std::string("fork() failed: ") +
                                   std::strerror(errno));
        }
    }

    auto task = std::make_shared<WatchedTask>();
    task->childPid = pid;
    if (st.cfg.shardTimeoutSeconds > 0.0) {
        task->deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   st.cfg.shardTimeoutSeconds));
        registerTask(st, task);
    }

    // Drain before waitpid so a chatty child can't deadlock on a full
    // pipe; EOF arrives when the child exits or is killed.
    std::string data = readAll(fds[0]);
    ::close(fds[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    markTaskDone(task);

    bool timed_out;
    {
        std::lock_guard<std::mutex> lock(task->mutex);
        timed_out = task->timedOut;
    }
    if (timed_out) {
        return hostOutcome(
            spec, index, attempt, FailureClass::HostTimeout,
            "shard exceeded its wall-clock deadline (" +
                std::to_string(st.cfg.shardTimeoutSeconds) +
                " s); child process killed");
    }
    if (WIFSIGNALED(status)) {
        return hostOutcome(spec, index, attempt,
                           FailureClass::HostCrash,
                           "shard child terminated by signal " +
                               std::to_string(WTERMSIG(status)));
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        return hostOutcome(
            spec, index, attempt, FailureClass::HostCrash,
            "shard child exited with status " +
                std::to_string(WEXITSTATUS(status)) +
                " (crash handler or sanitizer abort)");
    }

    ShardOutcome out;
    std::string line = data.substr(0, data.find('\n'));
    if (!parseShardOutcome(line, out)) {
        return hostOutcome(spec, index, attempt,
                           FailureClass::ResourceExhausted,
                           "shard child produced no parseable outcome "
                           "(torn pipe write)");
    }
    out.index = index;
    out.attempts = attempt;
    return out;
}

#endif // DRF_SUPERVISOR_HAVE_FORK

/** Dispatch one attempt to the configured isolation mode. */
ShardOutcome
runAttempt(SupervisorState &st, const ShardSpec &spec, std::size_t index,
           unsigned attempt)
{
#if DRF_SUPERVISOR_HAVE_FORK
    if (st.cfg.forkIsolation)
        return runForked(st, spec, index, attempt);
#endif
    if (st.cfg.shardTimeoutSeconds > 0.0)
        return runWithDeadline(st, spec, index, attempt);
    return runInProcess(spec, index, attempt);
}

/** Run one shard to a final outcome: attempts + transient retries. */
ShardOutcome
runShardSupervised(SupervisorState &st, ShardSpec &spec,
                   std::size_t index)
{
    // Apply the simulation event budget by rebuilding the runner from
    // the preset (note: this replaces any wrapper around run()).
    if (st.cfg.shardEventBudget != 0 && spec.gpuPreset) {
        GpuTestPreset preset = *spec.gpuPreset;
        preset.tester.eventBudget = st.cfg.shardEventBudget;
        ShardSpec budgeted = gpuShard(preset);
        spec.run = std::move(budgeted.run);
        spec.gpuPreset = std::move(budgeted.gpuPreset);
    }

    unsigned attempt = 1;
    for (;;) {
        ShardOutcome out = runAttempt(st, spec, index, attempt);
        bool transient = out.result.failureClass ==
                         FailureClass::ResourceExhausted;
        if (transient && attempt <= st.cfg.maxRetries &&
            !st.merge.stopRequested()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<std::uint64_t>(st.cfg.retryBackoffMs)
                << (attempt - 1)));
            ++attempt;
            continue;
        }
        out.attempts = attempt;
        return out;
    }
}

std::string
sanitizeFileName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            c = '_';
    }
    return out;
}

/**
 * Re-record a DRFTRC01 repro trace for a failing shard with preset
 * provenance. Protocol-level failures re-record in-process (they are
 * deterministic and bounded). Host-level failures re-record inside a
 * bounded forked child when fork isolation is on; without fork
 * isolation a JSON stub preserving preset + seed is written instead —
 * re-running a shard that just hung the host in-process could hang the
 * supervisor itself.
 */
void
captureRepro(const SupervisorConfig &cfg, const ShardSpec &spec,
             const ShardOutcome &out)
{
    if (cfg.reproDir.empty() || out.result.passed || !spec.gpuPreset)
        return;
#if DRF_SUPERVISOR_HAVE_FORK
    ::mkdir(cfg.reproDir.c_str(), 0777); // best effort
#endif
    std::string base = cfg.reproDir + "/" + sanitizeFileName(out.name);
    bool host = isHostFailureClass(out.result.failureClass);

    if (!host) {
        ReproTrace trace = recordGpuRun(*spec.gpuPreset);
        saveTraceFile(base + ".trace", trace);
        return;
    }

#if DRF_SUPERVISOR_HAVE_FORK
    if (cfg.forkIsolation) {
        pid_t pid = -1;
        {
            std::lock_guard<std::mutex> lock(g_forkMutex);
            pid = ::fork();
        }
        if (pid == 0) {
            // Bound the re-record: SIGALRM's default action kills the
            // child if the preset itself hangs.
            double timeout = cfg.shardTimeoutSeconds;
            unsigned cap = static_cast<unsigned>(
                std::max(5.0, 2.0 * std::max(0.0, timeout)));
            ::alarm(cap);
            ReproTrace trace = recordGpuRun(*spec.gpuPreset);
            saveTraceFile(base + ".trace", trace);
            ::_exit(0);
        }
        if (pid > 0) {
            int status = 0;
            while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
        }
        return;
    }
#endif

    // In-process host failure: preserve identity without re-running.
    JsonWriter w;
    w.beginObject();
    w.key("kind").value("hostfail_stub");
    w.key("name").value(out.name);
    w.key("seed").value(out.seed);
    w.key("preset").value(spec.gpuPreset->name);
    w.key("failure_class")
        .value(failureClassName(out.result.failureClass));
    w.key("report").value(out.result.report);
    w.endObject();
    std::ofstream stub(base + ".hostfail.json");
    stub << w.str() << '\n';
}

} // namespace

unsigned
currentShardAttempt()
{
    return t_shardAttempt;
}

CampaignResult
runSupervisedCampaign(std::vector<ShardSpec> shards,
                      const SupervisorConfig &cfg)
{
    SupervisorState st{cfg, ShardMerge(cfg.campaign, shards.size())};

    // Resume: adopt journaled outcomes for shards whose identity
    // matches. Host-level outcomes are *not* adopted — they describe
    // the previous host environment, not the deterministic simulation,
    // so those shards get re-executed.
    std::vector<bool> resumed(shards.size(), false);
    std::vector<ShardOutcome> adopted;
    if (cfg.resume && !cfg.journalPath.empty()) {
        std::vector<ShardOutcome> records;
        if (loadJournal(cfg.journalPath, records)) {
            for (ShardOutcome &rec : records) {
                if (rec.index >= shards.size())
                    continue;
                const ShardSpec &spec = shards[rec.index];
                if (rec.name != spec.name || rec.seed != spec.seed)
                    continue;
                if (isHostFailureClass(rec.result.failureClass))
                    continue;
                resumed[rec.index] = true;
                adopted.push_back(std::move(rec));
            }
        }
    }

    unsigned jobs =
        cfg.campaign.jobs != 0 ? cfg.campaign.jobs
                               : ThreadPool::defaultThreads();
    if (!shards.empty())
        jobs = std::min<unsigned>(
            jobs, static_cast<unsigned>(shards.size()));
    st.merge.setJobs(jobs);

    // Open for appending only after the resume pass read the file.
    CampaignJournal journal(cfg.journalPath);
    if (journal.ok()) {
        JsonWriter header;
        header.beginObject();
        header.key("v").value(1);
        header.key("kind").value("header");
        header.key("shards_planned")
            .value(static_cast<std::uint64_t>(shards.size()));
        header.key("resumed")
            .value(static_cast<std::uint64_t>(adopted.size()));
        header.endObject();
        journal.append(header.str());
    }

    // Merge adopted shards first, in index order (loadJournal returns
    // them sorted), so the aggregates a resumed run produces are the
    // same commutative sums an uninterrupted run would build.
    for (ShardOutcome &rec : adopted)
        st.merge.add(std::move(rec), 0.0, /*resumed=*/true);

    if (shards.empty())
        return st.merge.take(0.0);

    SignalGuard signals(cfg.handleSignals);
    Clock::time_point start = Clock::now();
    {
        ThreadPool pool(jobs);
        st.pool = &pool;
        std::thread watchdog([&st] { watchdogLoop(st); });

        for (std::size_t i = 0; i < shards.size(); ++i) {
            if (resumed[i])
                continue;
            pool.submit([&st, &cfg, &journal, start, i,
                         spec = std::move(shards[i])]() mutable {
                if (st.merge.stopRequested()) {
                    st.merge.addSkipped();
                    return;
                }
                ShardOutcome out = runShardSupervised(st, spec, i);
                captureRepro(cfg, spec, out);
                if (journal.ok())
                    journal.append(shardOutcomeToJson(out));
                st.merge.add(std::move(out), secondsSince(start));
            });
        }
        pool.waitIdle();

        st.shutdown.store(true, std::memory_order_release);
        watchdog.join();
        st.pool = nullptr;
    }

    // The watchdog may have been past its signal check when a late
    // signal arrived; make sure the flag is reflected either way.
    if (cfg.handleSignals &&
        g_signalCaught.load(std::memory_order_relaxed) != 0)
        st.merge.markInterrupted();

    return st.merge.take(secondsSince(start));
}

} // namespace drf
