#include "campaign/supervisor.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DRF_SUPERVISOR_HAVE_FORK 1
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define DRF_SUPERVISOR_HAVE_FORK 0
#endif

#include "campaign/campaign_json.hh"
#include "campaign/journal.hh"
#include "campaign/posix_io.hh"
#include "campaign/thread_pool.hh"
#include "chaos/chaos.hh"
#include "trace/repro.hh"
#include "trace/trace_file.hh"

namespace drf
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

thread_local unsigned t_shardAttempt = 1;

// Set by the signal handler; polled by the supervisor's signal thread.
// Async-signal-safe by construction (one relaxed atomic store).
std::atomic<int> g_signalCaught{0};

void
onTerminationSignal(int sig)
{
    g_signalCaught.store(sig, std::memory_order_relaxed);
}

/** RAII SIGINT/SIGTERM handler installation (no-op when disabled). */
class SignalGuard
{
  public:
    explicit SignalGuard(bool enable) : _enabled(enable)
    {
        if (!_enabled)
            return;
        g_signalCaught.store(0, std::memory_order_relaxed);
        _oldInt = std::signal(SIGINT, onTerminationSignal);
        _oldTerm = std::signal(SIGTERM, onTerminationSignal);
    }

    ~SignalGuard()
    {
        if (!_enabled)
            return;
        std::signal(SIGINT, _oldInt == SIG_ERR ? SIG_DFL : _oldInt);
        std::signal(SIGTERM, _oldTerm == SIG_ERR ? SIG_DFL : _oldTerm);
    }

    SignalGuard(const SignalGuard &) = delete;
    SignalGuard &operator=(const SignalGuard &) = delete;

  private:
    bool _enabled;
    void (*_oldInt)(int) = SIG_DFL;
    void (*_oldTerm)(int) = SIG_DFL;
};

/** One shard attempt under watch: its deadline and how to reap it. */
struct WatchedTask
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;     ///< attempt finished (any way)
    bool timedOut = false; ///< reaped by the watchdog
    Clock::time_point deadline{};
#if DRF_SUPERVISOR_HAVE_FORK
    pid_t childPid = -1; ///< fork mode: the child to SIGKILL
#endif
    ShardOutcome outcome; ///< in-process mode result slot
};

/** Build a host-level outcome (no stats, no grids — just triage). */
ShardOutcome
hostOutcome(const ShardSpec &spec, std::size_t index, unsigned attempt,
            FailureClass cls, std::string report)
{
    ShardOutcome out;
    out.name = spec.name;
    out.seed = spec.seed;
    out.index = index;
    out.attempts = attempt;
    out.result.passed = false;
    out.result.failureClass = cls;
    out.result.report = std::move(report);
    return out;
}

/**
 * In-process exception barrier: run the shard on the calling thread,
 * converting escapes into host triage (uncaught throw -> HostCrash,
 * bad_alloc -> ResourceExhausted, ResourceExhaustedError -> retriable).
 */
ShardOutcome
runInProcess(const ShardSpec &spec, std::size_t index, unsigned attempt)
{
    t_shardAttempt = attempt;
    ShardOutcome out;
    try {
        out = spec.run();
    } catch (const ResourceExhaustedError &e) {
        out = hostOutcome(spec, index, attempt,
                          FailureClass::ResourceExhausted, e.what());
    } catch (const std::bad_alloc &) {
        out = hostOutcome(spec, index, attempt,
                          FailureClass::ResourceExhausted,
                          "shard ran out of memory (std::bad_alloc)");
    } catch (const std::exception &e) {
        out = hostOutcome(spec, index, attempt, FailureClass::HostCrash,
                          std::string("uncaught shard exception: ") +
                              e.what());
    } catch (...) {
        out = hostOutcome(spec, index, attempt, FailureClass::HostCrash,
                          "uncaught shard exception of unknown type");
    }
    t_shardAttempt = 1;
    if (out.name.empty())
        out.name = spec.name;
    out.seed = spec.seed;
    out.index = index;
    out.attempts = attempt;
    return out;
}

#if DRF_SUPERVISOR_HAVE_FORK

// Serializes the pipe()+fork()+close() window so a concurrently forked
// child can never inherit another shard's pipe write end (which would
// keep that shard's parent blocked on read() past its child's death).
// Process-wide (not per-ShardRunner): a fleet worker and a test harness
// in one process must still serialize against each other.
std::mutex g_forkMutex;

#endif // DRF_SUPERVISOR_HAVE_FORK

std::string
sanitizeFileName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            c = '_';
    }
    return out;
}

/**
 * Re-record a DRFTRC01 repro trace for a failing shard with preset
 * provenance. Protocol-level failures re-record in-process (they are
 * deterministic and bounded). Host-level failures re-record inside a
 * bounded forked child when fork isolation is on; without fork
 * isolation a JSON stub preserving preset + seed is written instead —
 * re-running a shard that just hung the host in-process could hang the
 * supervisor itself.
 */
void
captureRepro(const SupervisorConfig &cfg, const ShardSpec &spec,
             const ShardOutcome &out)
{
    if (cfg.reproDir.empty() || out.result.passed || !spec.gpuPreset)
        return;
#if DRF_SUPERVISOR_HAVE_FORK
    ::mkdir(cfg.reproDir.c_str(), 0777); // best effort
#endif
    std::string base = cfg.reproDir + "/" + sanitizeFileName(out.name);
    bool host = isHostFailureClass(out.result.failureClass);

    if (!host) {
        ReproTrace trace = recordGpuRun(*spec.gpuPreset);
        saveTraceFile(base + ".trace", trace);
        return;
    }

#if DRF_SUPERVISOR_HAVE_FORK
    if (cfg.forkIsolation) {
        pid_t pid = -1;
        {
            std::lock_guard<std::mutex> lock(g_forkMutex);
            pid = ::fork();
        }
        if (pid == 0) {
            // Bound the re-record: SIGALRM's default action kills the
            // child if the preset itself hangs.
            double timeout = cfg.shardTimeoutSeconds;
            unsigned cap = static_cast<unsigned>(
                std::max(5.0, 2.0 * std::max(0.0, timeout)));
            ::alarm(cap);
            ReproTrace trace = recordGpuRun(*spec.gpuPreset);
            saveTraceFile(base + ".trace", trace);
            ::_exit(0);
        }
        if (pid > 0) {
            int status = 0;
            while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
        }
        return;
    }
#endif

    // In-process host failure: preserve identity without re-running.
    JsonWriter w;
    w.beginObject();
    w.key("kind").value("hostfail_stub");
    w.key("name").value(out.name);
    w.key("seed").value(out.seed);
    w.key("preset").value(spec.gpuPreset->name);
    w.key("failure_class")
        .value(failureClassName(out.result.failureClass));
    w.key("report").value(out.result.report);
    w.endObject();
    std::ofstream stub(base + ".hostfail.json");
    stub << w.str() << '\n';
}

} // namespace

/**
 * ShardRunner internals: the deadline watchdog and the per-attempt
 * isolation modes. One instance supervises any number of concurrent
 * run() calls; the watchdog thread exists only when a wall-clock
 * deadline is configured.
 */
struct ShardRunner::Impl
{
    const SupervisorConfig cfg;
    std::function<bool()> stopCheck;

    std::mutex watchMutex;
    std::vector<std::shared_ptr<WatchedTask>> watched;

    std::atomic<bool> shutdown{false};
    std::thread watchdog;

    explicit Impl(const SupervisorConfig &c) : cfg(c)
    {
        if (cfg.shardTimeoutSeconds > 0.0)
            watchdog = std::thread([this] { watchdogLoop(); });
    }

    ~Impl()
    {
        shutdown.store(true, std::memory_order_release);
        if (watchdog.joinable())
            watchdog.join();
    }

    bool
    stopRequested() const
    {
        return stopCheck && stopCheck();
    }

    void
    registerTask(const std::shared_ptr<WatchedTask> &task)
    {
        std::lock_guard<std::mutex> lock(watchMutex);
        watched.push_back(task);
    }

    /** Scan deadlines, reaping overdue attempts. */
    void
    watchdogLoop()
    {
        while (!shutdown.load(std::memory_order_acquire)) {
            Clock::time_point now = Clock::now();
            {
                std::lock_guard<std::mutex> lock(watchMutex);
                for (auto &task : watched) {
                    std::lock_guard<std::mutex> tl(task->mutex);
                    if (task->done || task->timedOut)
                        continue;
                    if (now < task->deadline)
                        continue;
                    task->timedOut = true;
#if DRF_SUPERVISOR_HAVE_FORK
                    if (task->childPid > 0)
                        ::kill(task->childPid, SIGKILL);
#endif
                    task->cv.notify_all();
                }
                watched.erase(
                    std::remove_if(watched.begin(), watched.end(),
                                   [](const auto &task) {
                                       std::lock_guard<std::mutex> tl(
                                           task->mutex);
                                       return task->done;
                                   }),
                    watched.end());
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    }

    /**
     * In-process attempt with a wall-clock deadline: the shard runs on
     * a dedicated thread; on timeout the thread is abandoned (detached)
     * and the shard becomes a HostTimeout. The thread owns copies of
     * everything it touches (spec, task), so abandoning it is safe — it
     * can only waste one core until the process exits, which is the
     * best that can be done for a truly wedged shard without process
     * isolation.
     */
    ShardOutcome
    runWithDeadline(const ShardSpec &spec, std::size_t index,
                    unsigned attempt)
    {
        auto task = std::make_shared<WatchedTask>();
        task->deadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    cfg.shardTimeoutSeconds));
        registerTask(task);

        std::thread worker([task, spec, index, attempt]() {
            ShardOutcome out = runInProcess(spec, index, attempt);
            std::lock_guard<std::mutex> lock(task->mutex);
            task->outcome = std::move(out);
            task->done = true;
            task->cv.notify_all();
        });

        std::unique_lock<std::mutex> lock(task->mutex);
        task->cv.wait(lock,
                      [&] { return task->done || task->timedOut; });
        if (task->done) {
            lock.unlock();
            worker.join();
            return std::move(task->outcome);
        }
        lock.unlock();
        worker.detach();
        return hostOutcome(
            spec, index, attempt, FailureClass::HostTimeout,
            "shard exceeded its wall-clock deadline (" +
                std::to_string(cfg.shardTimeoutSeconds) +
                " s); worker thread abandoned");
    }

#if DRF_SUPERVISOR_HAVE_FORK

    /**
     * Fork-isolated attempt: the child runs the shard under the
     * in-process barrier and reports the outcome over a pipe as one
     * journal-format line; the parent triages the wait status. Anything
     * that kills the child — segfault, abort, a sanitizer's _exit(1) —
     * is a HostCrash; a watchdog SIGKILL is a HostTimeout; fork/pipe
     * trouble or a torn outcome line is ResourceExhausted (retriable).
     */
    ShardOutcome
    runForked(const ShardSpec &spec, std::size_t index,
              unsigned attempt)
    {
        int fds[2] = {-1, -1};
        pid_t pid = -1;
        {
            std::lock_guard<std::mutex> lock(g_forkMutex);
            if (::pipe(fds) != 0) {
                return hostOutcome(spec, index, attempt,
                                   FailureClass::ResourceExhausted,
                                   std::string("pipe() failed: ") +
                                       std::strerror(errno));
            }
            t_shardAttempt = attempt; // inherited across fork()
            pid = ::fork();
            if (pid == 0) {
                // Child: run the shard, ship the outcome, _exit
                // without running atexit/static destructors (the
                // parent owns them).
                ::close(fds[0]);
                ShardOutcome out = runInProcess(spec, index, attempt);
                std::string line = shardOutcomeToJson(out);
                line.push_back('\n');
                io::writeAll(fds[1], line);
                ::close(fds[1]);
                ::_exit(0);
            }
            t_shardAttempt = 1;
            ::close(fds[1]);
            if (pid < 0) {
                ::close(fds[0]);
                return hostOutcome(spec, index, attempt,
                                   FailureClass::ResourceExhausted,
                                   std::string("fork() failed: ") +
                                       std::strerror(errno));
            }
        }

        auto task = std::make_shared<WatchedTask>();
        task->childPid = pid;
        if (cfg.shardTimeoutSeconds > 0.0) {
            task->deadline =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        cfg.shardTimeoutSeconds));
            registerTask(task);
        }

        // Drain before waitpid so a chatty child can't deadlock on a
        // full pipe; EOF arrives when the child exits or is killed.
        std::string data = io::readToEof(fds[0]);
        ::close(fds[0]);

        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
        {
            std::lock_guard<std::mutex> lock(task->mutex);
            task->done = true;
        }

        bool timed_out;
        {
            std::lock_guard<std::mutex> lock(task->mutex);
            timed_out = task->timedOut;
        }
        if (timed_out) {
            return hostOutcome(
                spec, index, attempt, FailureClass::HostTimeout,
                "shard exceeded its wall-clock deadline (" +
                    std::to_string(cfg.shardTimeoutSeconds) +
                    " s); child process killed");
        }
        if (WIFSIGNALED(status)) {
            return hostOutcome(spec, index, attempt,
                               FailureClass::HostCrash,
                               "shard child terminated by signal " +
                                   std::to_string(WTERMSIG(status)));
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
            return hostOutcome(
                spec, index, attempt, FailureClass::HostCrash,
                "shard child exited with status " +
                    std::to_string(WEXITSTATUS(status)) +
                    " (crash handler or sanitizer abort)");
        }

        ShardOutcome out;
        std::string line = data.substr(0, data.find('\n'));
        if (!parseShardOutcome(line, out)) {
            return hostOutcome(
                spec, index, attempt,
                FailureClass::ResourceExhausted,
                "shard child produced no parseable outcome "
                "(torn pipe write)");
        }
        out.index = index;
        out.attempts = attempt;
        return out;
    }

#endif // DRF_SUPERVISOR_HAVE_FORK

    /** Dispatch one attempt to the configured isolation mode. */
    ShardOutcome
    runAttempt(const ShardSpec &spec, std::size_t index,
               unsigned attempt)
    {
#if DRF_SUPERVISOR_HAVE_FORK
        if (cfg.forkIsolation)
            return runForked(spec, index, attempt);
#endif
        if (cfg.shardTimeoutSeconds > 0.0)
            return runWithDeadline(spec, index, attempt);
        return runInProcess(spec, index, attempt);
    }

    /** Run one shard to a final outcome: attempts + retries. */
    ShardOutcome
    runSupervised(ShardSpec &spec, std::size_t index)
    {
        // Apply the simulation event budget by rebuilding the runner
        // from the preset (this replaces any wrapper around run()).
        if (cfg.shardEventBudget != 0 && spec.gpuPreset) {
            GpuTestPreset preset = *spec.gpuPreset;
            preset.tester.eventBudget = cfg.shardEventBudget;
            ShardSpec budgeted = gpuShard(preset);
            spec.run = std::move(budgeted.run);
            spec.gpuPreset = std::move(budgeted.gpuPreset);
        }

        unsigned attempt = 1;
        for (;;) {
            ShardOutcome out = runAttempt(spec, index, attempt);
            bool transient = out.result.failureClass ==
                             FailureClass::ResourceExhausted;
            if (transient && attempt <= cfg.maxRetries &&
                !stopRequested()) {
                std::uint64_t base =
                    static_cast<std::uint64_t>(cfg.retryBackoffMs)
                    << (attempt - 1);
                // Deterministic jitter: hashed from (shard seed,
                // attempt), so two workers retrying sibling shards
                // after one ResourceExhausted burst don't hammer the
                // host in lockstep, while the exact delay for a given
                // shard stays reproducible.
                std::uint64_t extra = 0;
                if (cfg.retryJitterPct > 0 && base > 0) {
                    std::uint64_t span =
                        base * cfg.retryJitterPct / 100 + 1;
                    char tag[32];
                    std::snprintf(tag, sizeof(tag), "retry-%u",
                                  attempt);
                    extra = chaos::deriveSeed(spec.seed, tag) % span;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(base + extra));
                ++attempt;
                continue;
            }
            out.attempts = attempt;
            return out;
        }
    }
};

ShardRunner::ShardRunner(const SupervisorConfig &cfg)
    : _impl(std::make_unique<Impl>(cfg))
{
    // Fleet transports and journal writes may hit closed pipes; a
    // supervised process must see EPIPE, not die.
    io::ignoreSigpipe();
}

ShardRunner::~ShardRunner() = default;

void
ShardRunner::setStopCheck(std::function<bool()> stop_check)
{
    _impl->stopCheck = std::move(stop_check);
}

ShardOutcome
ShardRunner::run(ShardSpec spec, std::size_t index)
{
    ShardOutcome out = _impl->runSupervised(spec, index);
    captureRepro(_impl->cfg, spec, out);
    return out;
}

unsigned
currentShardAttempt()
{
    return t_shardAttempt;
}

CampaignResult
runSupervisedCampaign(std::vector<ShardSpec> shards,
                      const SupervisorConfig &cfg)
{
    ShardMerge merge(cfg.campaign, shards.size());

    // Resume: adopt journaled outcomes for shards whose identity
    // matches. Host-level outcomes are *not* adopted — they describe
    // the previous host environment, not the deterministic simulation,
    // so those shards get re-executed.
    std::vector<bool> resumed(shards.size(), false);
    std::vector<ShardOutcome> adopted;
    if (cfg.resume && !cfg.journalPath.empty()) {
        std::vector<ShardOutcome> records;
        if (loadJournal(cfg.journalPath, records)) {
            for (ShardOutcome &rec : records) {
                if (rec.index >= shards.size())
                    continue;
                const ShardSpec &spec = shards[rec.index];
                if (rec.name != spec.name || rec.seed != spec.seed)
                    continue;
                if (isHostFailureClass(rec.result.failureClass))
                    continue;
                resumed[rec.index] = true;
                adopted.push_back(std::move(rec));
            }
        }
    }

    unsigned jobs =
        cfg.campaign.jobs != 0 ? cfg.campaign.jobs
                               : ThreadPool::defaultThreads();
    if (!shards.empty())
        jobs = std::min<unsigned>(
            jobs, static_cast<unsigned>(shards.size()));
    merge.setJobs(jobs);

    // Open for appending only after the resume pass read the file.
    CampaignJournal journal(cfg.journalPath);
    if (journal.ok()) {
        JsonWriter header;
        header.beginObject();
        header.key("v").value(1);
        header.key("kind").value("header");
        header.key("shards_planned")
            .value(static_cast<std::uint64_t>(shards.size()));
        header.key("resumed")
            .value(static_cast<std::uint64_t>(adopted.size()));
        header.endObject();
        journal.append(header.str());
    }

    // Merge adopted shards first, in index order (loadJournal returns
    // them sorted), so the aggregates a resumed run produces are the
    // same commutative sums an uninterrupted run would build.
    for (ShardOutcome &rec : adopted)
        merge.add(std::move(rec), 0.0, /*resumed=*/true);

    if (shards.empty())
        return merge.take(0.0);

    SignalGuard signals(cfg.handleSignals);
    ShardRunner runner(cfg);
    runner.setStopCheck([&merge] { return merge.stopRequested(); });

    Clock::time_point start = Clock::now();
    {
        ThreadPool pool(jobs);

        // Poll for a caught termination signal and turn it into a
        // graceful shutdown: queued shards cancelled wholesale, running
        // shards left to finish.
        std::atomic<bool> sigpollStop{false};
        std::thread sigpoll;
        if (cfg.handleSignals) {
            sigpoll = std::thread([&] {
                bool handled = false;
                while (!sigpollStop.load(std::memory_order_acquire)) {
                    if (!handled &&
                        g_signalCaught.load(
                            std::memory_order_relaxed) != 0) {
                        handled = true;
                        merge.markInterrupted();
                        merge.addSkipped(pool.cancelPending());
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                }
            });
        }

        for (std::size_t i = 0; i < shards.size(); ++i) {
            if (resumed[i])
                continue;
            pool.submit([&merge, &runner, &journal, start, i,
                         spec = std::move(shards[i])]() mutable {
                if (merge.stopRequested()) {
                    merge.addSkipped();
                    return;
                }
                ShardOutcome out = runner.run(std::move(spec), i);
                if (journal.ok())
                    journal.append(shardOutcomeToJson(out));
                merge.add(std::move(out), secondsSince(start));
            });
        }
        pool.waitIdle();

        sigpollStop.store(true, std::memory_order_release);
        if (sigpoll.joinable())
            sigpoll.join();
    }

    // The poll thread may have been past its check when a late signal
    // arrived; make sure the flag is reflected either way.
    if (cfg.handleSignals &&
        g_signalCaught.load(std::memory_order_relaxed) != 0)
        merge.markInterrupted();

    // Flush journaled records before take(): a crash after this point
    // loses nothing, and tests reading the journal right after the
    // call see every record.
    journal.flush(/*sync=*/true);

    return merge.take(secondsSince(start));
}

} // namespace drf
