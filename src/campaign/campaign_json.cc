#include "campaign/campaign_json.hh"

#include <cstdio>

namespace drf
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::preValue()
{
    if (_needComma)
        _out << ",";
    _needComma = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    _out << "{";
    _needComma = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    _out << "}";
    _needComma = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    _out << "[";
    _needComma = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    _out << "]";
    _needComma = true;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    preValue();
    _out << jsonEscape(name) << ":";
    _needComma = false;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    preValue();
    _out << jsonEscape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    _out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    _out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    preValue();
    _out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    preValue();
    _out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    _out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    preValue();
    _out << "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    preValue();
    _out << json;
    return *this;
}

std::string
campaignToJson(const CampaignResult &result,
               const std::string &coverage_test_type)
{
    JsonWriter w;
    w.beginObject();
    w.key("passed").value(result.passed);
    w.key("jobs").value(result.jobs);
    w.key("shards_planned")
        .value(static_cast<std::uint64_t>(result.shardsPlanned));
    w.key("shards_run")
        .value(static_cast<std::uint64_t>(result.shardsRun));
    w.key("shards_skipped")
        .value(static_cast<std::uint64_t>(result.shardsSkipped));
    w.key("shards_resumed")
        .value(static_cast<std::uint64_t>(result.shardsResumed));
    w.key("host_crashes")
        .value(static_cast<std::uint64_t>(result.hostCrashes));
    w.key("host_timeouts")
        .value(static_cast<std::uint64_t>(result.hostTimeouts));
    w.key("resource_exhausted")
        .value(static_cast<std::uint64_t>(result.resourceExhausted));
    w.key("retries").value(result.retriesPerformed);
    w.key("interrupted").value(result.interrupted);
    w.key("total_ticks").value(result.totalTicks);
    w.key("total_events").value(result.totalEvents);
    w.key("total_episodes").value(result.totalEpisodes);
    w.key("total_loads_checked").value(result.totalLoadsChecked);
    w.key("total_stores_retired").value(result.totalStoresRetired);
    w.key("total_atomics_checked").value(result.totalAtomicsChecked);
    w.key("shard_seconds_sum").value(result.shardSecondsSum);
    w.key("wall_seconds").value(result.wallSeconds);
    w.key("episodes_per_sec").value(result.episodesPerSec);
    w.key("events_per_sec").value(result.eventsPerSec);

    w.key("l1_union_pct");
    if (result.l1Union)
        w.value(result.l1Union->coveragePct(coverage_test_type));
    else
        w.nullValue();
    w.key("l2_union_pct");
    if (result.l2Union)
        w.value(result.l2Union->coveragePct(coverage_test_type));
    else
        w.nullValue();
    w.key("dir_union_pct");
    if (result.dirUnion)
        w.value(result.dirUnion->coveragePct(coverage_test_type));
    else
        w.nullValue();

    w.key("shards_to_saturation");
    if (result.shardsToSaturation)
        w.value(static_cast<std::uint64_t>(*result.shardsToSaturation));
    else
        w.nullValue();

    w.key("first_failure");
    if (result.firstFailure) {
        w.beginObject();
        w.key("name").value(result.firstFailure->name);
        w.key("seed").value(result.firstFailure->seed);
        w.key("index")
            .value(static_cast<std::uint64_t>(result.firstFailure->index));
        w.key("failure_class")
            .value(failureClassName(result.firstFailure->failureClass));
        w.key("report").value(result.firstFailure->report);
        w.endObject();
    } else {
        w.nullValue();
    }

    w.key("saturation_curve").beginArray();
    for (const CoveragePoint &p : result.saturationCurve) {
        w.beginObject();
        w.key("shards")
            .value(static_cast<std::uint64_t>(p.shardsCompleted));
        w.key("l1_pct").value(p.l1Pct);
        w.key("l2_pct").value(p.l2Pct);
        w.key("cumulative_events").value(p.cumulativeEvents);
        w.key("wall_seconds").value(p.wallSeconds);
        w.key("shard_name").value(p.shardName);
        w.key("shard_seed").value(p.shardSeed);
        w.key("shard_episodes").value(p.shardEpisodes);
        w.key("shard_actions").value(p.shardActions);
        w.key("cumulative_episodes").value(p.cumulativeEpisodes);
        w.key("cumulative_actions").value(p.cumulativeActions);
        w.key("new_cells").value(static_cast<std::uint64_t>(p.newCells));
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

} // namespace drf
