/**
 * @file
 * Campaign journal: append-only JSONL checkpointing of shard outcomes.
 *
 * Every completed shard is serialized as one self-contained JSON line —
 * identity (index/name/seed), the full TesterResult, the host attempt
 * count, and the three coverage grids as exact per-cell hit counts. The
 * line format is shared by three consumers:
 *
 *  - the journal file the supervisor appends after each shard, which
 *    --resume loads to skip completed shards while reproducing
 *    bit-identical aggregates (sums and grid unions are commutative, so
 *    merging journaled outcomes in index order equals re-running them);
 *  - the fork-isolation pipe: a shard child process writes the same
 *    line to its parent, so process isolation and checkpointing
 *    exercise one serializer and one parser;
 *  - the fleet transport (src/fleet): a worker's Result frame carries
 *    the same line, so the coordinator's journal is written from the
 *    byte-identical record the worker produced.
 *
 * Grids are reconstructible because every controller's TransitionSpec
 * is a static singleton (GpuL1Cache::spec() etc.): a record names its
 * level + spec and the loader maps that back to the live spec object.
 * The parser is the shared minimal JSON reader (json_value.hh); the
 * loader tolerates a truncated trailing line (a write interrupted by
 * SIGKILL/power loss) and takes the *last* record per shard index, so
 * a journal appended to across several resumed sessions stays valid.
 *
 * On-disk integrity: by default each appended line is sealed in a
 * CRC32C envelope — {"crc":"xxxxxxxx","data":<line>} — so the loader
 * can tell a record that was *damaged* (bit rot, a torn write spliced
 * against a later append) from one that is merely absent. Sealed and
 * bare (pre-envelope) lines coexist in one file; damage is counted per
 * category in JournalLoadStats, never silently absorbed as a parse
 * miss.
 *
 * Failure behavior: the writer checks every write() and fsync(). A
 * failed syscall is retried maxWriteRetries times with a small backoff
 * (short writes pick up exactly where the kernel stopped); if the
 * ladder is exhausted the journal *degrades* — it stops persisting,
 * the campaign keeps running, and JournalStatus reports degraded=true
 * with the errno and operation that caused it so the caller can
 * surface "this run is not resumable past shard N" instead of either
 * crashing the campaign or lying about durability. Fault-injection
 * hooks (Policy::writeFault / syncFault) let tests and chaos drills
 * drive this ladder deterministically: an injected short write
 * actually writes the allowed prefix, producing genuine torn bytes on
 * disk for the resume path to heal over.
 *
 * The writer buffers: appended lines accumulate and are written with
 * one write() per flush batch instead of one syscall per record, and
 * flushes always end on record boundaries, so the on-disk tail is at
 * most one torn record (exactly what the loader tolerates). fsync runs
 * on the flush that completes every syncEveryRecords-th shard record
 * and on close — the "shard boundary" durability policy: what a crash
 * can lose is a bounded number of deterministic, re-runnable shards,
 * never a torn prefix of the file.
 */

#ifndef DRF_CAMPAIGN_JOURNAL_HH
#define DRF_CAMPAIGN_JOURNAL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace drf
{

/** Serialize one completed shard as a JSONL line (no newline). */
std::string shardOutcomeToJson(const ShardOutcome &out);

/**
 * Parse a shardOutcomeToJson line. Returns false on malformed input,
 * unknown failure classes, or grid records whose spec name does not
 * match the live spec for their level — never a half-filled outcome.
 */
bool parseShardOutcome(const std::string &line, ShardOutcome &out);

/** Wrap one journal line in the CRC32C integrity envelope. */
std::string sealJournalRecord(const std::string &line);

/** How unsealing one journal line went. */
enum class JournalSeal
{
    Bare, ///< no envelope (legacy line / header); inner = line
    Ok,   ///< envelope present, checksum verified; inner = payload
    Bad,  ///< envelope present but damaged (CRC mismatch / malformed)
};

/**
 * Strip (and verify) the integrity envelope from one journal line.
 * On Bare and Ok, @p inner receives the usable payload; on Bad it is
 * left untouched and the line must be discarded as damaged.
 */
JournalSeal unsealJournalRecord(const std::string &line,
                                std::string &inner);

/** What loadJournal saw, for triage: damage is counted, not hidden. */
struct JournalLoadStats
{
    std::uint64_t lines = 0;       ///< non-empty lines scanned
    std::uint64_t records = 0;     ///< shard records accepted
    std::uint64_t crcSkipped = 0;  ///< envelope damaged (CRC/format)
    std::uint64_t parseSkipped = 0; ///< torn / unparseable payloads
};

/**
 * Load every shard record from @p path (see file comment for the
 * tolerance rules). Records are returned in ascending shard-index
 * order. Returns false only when the file cannot be opened. When
 * @p stats is non-null it receives the per-category skip counts.
 */
bool loadJournal(const std::string &path,
                 std::vector<ShardOutcome> &records,
                 JournalLoadStats *stats = nullptr);

/**
 * Outcome of an injected journal write (Policy::writeFault): the
 * kernel-visible prefix the write is allowed to persist, and the errno
 * the remainder fails with. The default is "no fault".
 */
struct JournalWriteFate
{
    std::size_t allow = std::numeric_limits<std::size_t>::max();
    int err = 0;
};

/** Writer health, for end-of-campaign triage output. */
struct JournalStatus
{
    bool enabled = false;  ///< a path was given and open() succeeded
    bool degraded = false; ///< retry ladder exhausted; no longer persisting
    std::uint64_t records = 0;       ///< lines accepted via append()
    std::uint64_t failedWrites = 0;  ///< write attempts that failed
    std::uint64_t fsyncFailures = 0; ///< fsync attempts that failed
    std::uint64_t retries = 0;       ///< backoff-and-retry rounds taken
    int lastErrno = 0;               ///< errno of the latest failure
    std::string lastOp;              ///< "write" or "fsync"
};

/** Render a JournalStatus as a JSON object (for triage reports). */
std::string journalStatusJson(const JournalStatus &status);

/** Append-only journal writer; thread-safe, batched (see file doc). */
class CampaignJournal
{
  public:
    /** Durability / batching / failure policy. */
    struct Policy
    {
        /** Flush once this many buffered bytes accumulate. */
        std::size_t flushBytes = 32 * 1024;

        /** fsync at the flush completing every Nth record; 0 = only on
         *  close. */
        unsigned syncEveryRecords = 8;

        /** Retry rounds after a failed write()/fsync() before the
         *  journal degrades (so up to 1 + maxWriteRetries attempts). */
        unsigned maxWriteRetries = 3;

        /** Backoff before retry r is retryBackoffMs << (r-1). */
        unsigned retryBackoffMs = 2;

        /** Seal each record in the CRC32C envelope. */
        bool crcRecords = true;

        /**
         * Fault-injection seams (tests / chaos drills). writeFault is
         * consulted once per write attempt with the bytes about to be
         * written and may cap the persisted prefix and fail the rest;
         * syncFault returns an errno to fail fsync with (0 = none).
         * Both see the *retry* attempts too, so a seeded plan decides
         * whether the ladder recovers or degrades.
         */
        std::function<JournalWriteFate(std::size_t)> writeFault;
        std::function<int()> syncFault;
    };

    /**
     * Open @p path for appending (created if missing). An empty path
     * produces a disabled journal: ok() is false, append() a no-op.
     */
    explicit CampaignJournal(const std::string &path);
    CampaignJournal(const std::string &path, const Policy &policy);

    /** Flushes, fsyncs, and closes. */
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    bool ok() const { return _fd >= 0 && !_failed; }

    /** Writer health snapshot (thread-safe). */
    JournalStatus status();

    /** Append one line + '\n' to the flush buffer (see Policy). */
    void append(const std::string &line);

    /**
     * Write the buffer out now (one syscall), optionally fsync. The
     * fleet coordinator calls this when a batch completes so a freshly
     * streamed-in record is resumable before the next lease goes out.
     */
    void flush(bool sync = false);

  private:
    void flushLocked(bool sync);
    bool writeBufferLocked();
    bool syncLocked();
    void degradeLocked(int err, const char *op);
    void backoffLocked(unsigned attempt);

    std::mutex _mutex;
    std::string _buffer;
    Policy _policy;
    JournalStatus _status;
    int _fd = -1;
    bool _failed = false;
    unsigned _recordsBuffered = 0;
    unsigned _recordsSinceSync = 0;
};

} // namespace drf

#endif // DRF_CAMPAIGN_JOURNAL_HH
