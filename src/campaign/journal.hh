/**
 * @file
 * Campaign journal: append-only JSONL checkpointing of shard outcomes.
 *
 * Every completed shard is serialized as one self-contained JSON line —
 * identity (index/name/seed), the full TesterResult, the host attempt
 * count, and the three coverage grids as exact per-cell hit counts. The
 * line format is shared by three consumers:
 *
 *  - the journal file the supervisor appends after each shard, which
 *    --resume loads to skip completed shards while reproducing
 *    bit-identical aggregates (sums and grid unions are commutative, so
 *    merging journaled outcomes in index order equals re-running them);
 *  - the fork-isolation pipe: a shard child process writes the same
 *    line to its parent, so process isolation and checkpointing
 *    exercise one serializer and one parser;
 *  - the fleet transport (src/fleet): a worker's Result frame carries
 *    the same line, so the coordinator's journal is written from the
 *    byte-identical record the worker produced.
 *
 * Grids are reconstructible because every controller's TransitionSpec
 * is a static singleton (GpuL1Cache::spec() etc.): a record names its
 * level + spec and the loader maps that back to the live spec object.
 * The parser is the shared minimal JSON reader (json_value.hh); the
 * loader tolerates a truncated trailing line (a write interrupted by
 * SIGKILL/power loss) and takes the *last* record per shard index, so
 * a journal appended to across several resumed sessions stays valid.
 *
 * The writer buffers: appended lines accumulate and are written with
 * one write() per flush batch instead of one syscall per record, and
 * flushes always end on record boundaries, so the on-disk tail is at
 * most one torn record (exactly what the loader tolerates). fsync runs
 * on the flush that completes every syncEveryRecords-th shard record
 * and on close — the "shard boundary" durability policy: what a crash
 * can lose is a bounded number of deterministic, re-runnable shards,
 * never a torn prefix of the file.
 */

#ifndef DRF_CAMPAIGN_JOURNAL_HH
#define DRF_CAMPAIGN_JOURNAL_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace drf
{

/** Serialize one completed shard as a JSONL line (no newline). */
std::string shardOutcomeToJson(const ShardOutcome &out);

/**
 * Parse a shardOutcomeToJson line. Returns false on malformed input,
 * unknown failure classes, or grid records whose spec name does not
 * match the live spec for their level — never a half-filled outcome.
 */
bool parseShardOutcome(const std::string &line, ShardOutcome &out);

/**
 * Load every shard record from @p path (see file comment for the
 * tolerance rules). Records are returned in ascending shard-index
 * order. Returns false only when the file cannot be opened.
 */
bool loadJournal(const std::string &path,
                 std::vector<ShardOutcome> &records);

/** Append-only journal writer; thread-safe, batched (see file doc). */
class CampaignJournal
{
  public:
    /** Durability / batching policy. */
    struct Policy
    {
        /** Flush once this many buffered bytes accumulate. */
        std::size_t flushBytes = 32 * 1024;

        /** fsync at the flush completing every Nth record; 0 = only on
         *  close. */
        unsigned syncEveryRecords = 8;
    };

    /**
     * Open @p path for appending (created if missing). An empty path
     * produces a disabled journal: ok() is false, append() a no-op.
     */
    explicit CampaignJournal(const std::string &path);
    CampaignJournal(const std::string &path, const Policy &policy);

    /** Flushes, fsyncs, and closes. */
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    bool ok() const { return _fd >= 0 && !_failed; }

    /** Append one line + '\n' to the flush buffer (see Policy). */
    void append(const std::string &line);

    /**
     * Write the buffer out now (one syscall), optionally fsync. The
     * fleet coordinator calls this when a batch completes so a freshly
     * streamed-in record is resumable before the next lease goes out.
     */
    void flush(bool sync = false);

  private:
    void flushLocked(bool sync);

    std::mutex _mutex;
    std::string _buffer;
    Policy _policy;
    int _fd = -1;
    bool _failed = false;
    unsigned _recordsBuffered = 0;
    unsigned _recordsSinceSync = 0;
};

} // namespace drf

#endif // DRF_CAMPAIGN_JOURNAL_HH
