/**
 * @file
 * Campaign journal: append-only JSONL checkpointing of shard outcomes.
 *
 * Every completed shard is serialized as one self-contained JSON line —
 * identity (index/name/seed), the full TesterResult, the host attempt
 * count, and the three coverage grids as exact per-cell hit counts. The
 * line format is shared by two consumers:
 *
 *  - the journal file the supervisor appends after each shard, which
 *    --resume loads to skip completed shards while reproducing
 *    bit-identical aggregates (sums and grid unions are commutative, so
 *    merging journaled outcomes in index order equals re-running them);
 *  - the fork-isolation pipe: a shard child process writes the same
 *    line to its parent, so process isolation and checkpointing
 *    exercise one serializer and one parser.
 *
 * Grids are reconstructible because every controller's TransitionSpec
 * is a static singleton (GpuL1Cache::spec() etc.): a record names its
 * level + spec and the loader maps that back to the live spec object.
 * The parser is a minimal hand-rolled JSON reader over this flat schema
 * (the repo deliberately has no third-party JSON dependency); the
 * loader tolerates a truncated trailing line (a write interrupted by
 * SIGKILL/power loss) and takes the *last* record per shard index, so
 * a journal appended to across several resumed sessions stays valid.
 */

#ifndef DRF_CAMPAIGN_JOURNAL_HH
#define DRF_CAMPAIGN_JOURNAL_HH

#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace drf
{

/** Serialize one completed shard as a JSONL line (no newline). */
std::string shardOutcomeToJson(const ShardOutcome &out);

/**
 * Parse a shardOutcomeToJson line. Returns false on malformed input,
 * unknown failure classes, or grid records whose spec name does not
 * match the live spec for their level — never a half-filled outcome.
 */
bool parseShardOutcome(const std::string &line, ShardOutcome &out);

/**
 * Load every shard record from @p path (see file comment for the
 * tolerance rules). Records are returned in ascending shard-index
 * order. Returns false only when the file cannot be opened.
 */
bool loadJournal(const std::string &path,
                 std::vector<ShardOutcome> &records);

/** Append-only journal writer; thread-safe, flushed per line. */
class CampaignJournal
{
  public:
    /**
     * Open @p path for appending (created if missing). An empty path
     * produces a disabled journal: ok() is false, append() a no-op.
     */
    explicit CampaignJournal(const std::string &path);

    bool ok() const { return _out.is_open() && _out.good(); }

    /** Append one line + '\n' and flush. */
    void append(const std::string &line);

  private:
    std::mutex _mutex;
    std::ofstream _out;
};

} // namespace drf

#endif // DRF_CAMPAIGN_JOURNAL_HH
