/**
 * @file
 * Build provenance for machine-readable outputs.
 *
 * The bench JSON baselines (BENCH_campaign.json, BENCH_msg_path.json)
 * are only comparable when they come from like builds; recording the
 * git revision and CMake build type alongside cpu_model lets the CI
 * regression gate (and a human reading a stale baseline) see exactly
 * what produced the numbers. The values are injected at configure time
 * by the root CMakeLists; a build outside CMake gets "unknown".
 */

#ifndef DRF_SIM_BUILD_INFO_HH
#define DRF_SIM_BUILD_INFO_HH

namespace drf
{

#ifndef DRF_GIT_SHA
#define DRF_GIT_SHA "unknown"
#endif
#ifndef DRF_BUILD_TYPE
#define DRF_BUILD_TYPE "unknown"
#endif

/** Abbreviated git revision of the source tree ("unknown" if absent). */
inline const char *buildGitSha() { return DRF_GIT_SHA; }

/** CMake build type the binary was compiled with. */
inline const char *buildType() { return DRF_BUILD_TYPE; }

} // namespace drf

#endif // DRF_SIM_BUILD_INFO_HH
