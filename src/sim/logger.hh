/**
 * @file
 * gem5-DPRINTF-style debug tracing with named flags.
 *
 * Components log through DLOG(queue, "FlagName", "message " << value).
 * Flags are enabled per-process via Logger::enable("FlagName") or the
 * DRF_DEBUG_FLAGS environment variable (comma separated). Logging compiles
 * to a cheap flag check when disabled.
 *
 * The tester also uses the logger's ring buffer to reconstruct the recent
 * transaction history around a detected failure (Section III.D of the
 * paper): the last N formatted records are always retained, even when no
 * flag is enabled, and dumped on demand.
 */

#ifndef DRF_SIM_LOGGER_HH
#define DRF_SIM_LOGGER_HH

#include <deque>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace drf
{

/**
 * Process-wide trace sink. Singleton by design: trace flags mirror gem5's
 * global --debug-flags behaviour.
 *
 * All methods are thread-safe: campaign shards (see src/campaign/) run
 * one simulation per thread but share this sink, so flag lookups and the
 * retained-history ring are guarded by an internal mutex.
 */
class Logger
{
  public:
    /** Access the process-wide instance. */
    static Logger &get();

    /** Enable a trace flag ("all" enables everything). */
    void enable(const std::string &flag);

    /** Disable a previously enabled flag. */
    void disable(const std::string &flag);

    /** Disable all flags. */
    void disableAll();

    /** True if messages for @p flag should be printed to stdout. */
    bool enabled(const std::string &flag) const;

    /**
     * Record (and maybe print) one message.
     *
     * @param tick Simulated time of the record.
     * @param flag Trace flag category.
     * @param who  Component name.
     * @param msg  Preformatted message body.
     */
    void record(Tick tick, const std::string &flag, const std::string &who,
                const std::string &msg);

    /** Retained recent records, oldest first. */
    std::vector<std::string> history() const;

    /** Dump retained history to stderr (used on failure). */
    void dumpHistory() const;

    /** Resize the retained-history ring buffer (0 disables retention). */
    void setHistoryDepth(std::size_t depth);

    /** Drop retained history (e.g., between test cases). */
    void clearHistory();

  private:
    Logger();

    mutable std::mutex _mutex;
    std::unordered_set<std::string> _flags;
    bool _allEnabled = false;
    std::deque<std::string> _history;
    std::size_t _historyDepth = 256;
};

} // namespace drf

/**
 * Log one message on behalf of a component.
 *
 * @param eq   EventQueue (for the timestamp).
 * @param flag Trace flag name (string literal).
 * @param who  Component name (std::string).
 * @param expr Ostream expression, e.g. "addr=" << addr.
 */
#define DLOG(eq, flag, who, expr)                                          \
    do {                                                                   \
        std::ostringstream dlog_ss__;                                      \
        dlog_ss__ << expr;                                                 \
        ::drf::Logger::get().record((eq).curTick(), flag, who,             \
                                    dlog_ss__.str());                      \
    } while (0)

#endif // DRF_SIM_LOGGER_HH
