#include "sim/legacy_event_queue.hh"

#include <algorithm>
#include <cassert>

namespace drf
{

void
LegacyEventQueue::schedule(Tick when, EventFunc fn)
{
    assert(when >= _curTick && "event scheduled in the past");
    _queue.push_back(Entry{when, _nextSeq++, std::move(fn)});
    std::push_heap(_queue.begin(), _queue.end());
}

void
LegacyEventQueue::executeNext()
{
    std::pop_heap(_queue.begin(), _queue.end());
    Entry entry = std::move(_queue.back());
    _queue.pop_back();
    _curTick = entry.when;
    ++_eventsExecuted;
    // The callback may schedule further events; entry owns the function
    // independently of the heap.
    entry.fn();
}

bool
LegacyEventQueue::run(Tick limit)
{
    while (!_queue.empty()) {
        if (_queue.front().when > limit) {
            _curTick = limit;
            return false;
        }
        executeNext();
    }
    return true;
}

std::uint64_t
LegacyEventQueue::runEvents(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (executed < max_events && !_queue.empty()) {
        executeNext();
        ++executed;
    }
    return executed;
}

void
LegacyEventQueue::reset()
{
    _queue.clear();
    _curTick = 0;
    _nextSeq = 0;
    _eventsExecuted = 0;
}

} // namespace drf
