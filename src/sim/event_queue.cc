#include "sim/event_queue.hh"

#include <algorithm>

namespace drf
{

void
EventQueue::pushHeap(HeapEntry entry)
{
    // Sift up with hole moves: the new entry is held in a register-local
    // temporary while ancestors shift down, costing one 24-byte copy per
    // level instead of a swap's three.
    std::size_t hole = _heap.size();
    _heap.push_back(entry);
    while (hole > 0) {
        std::size_t parent = (hole - 1) / arity;
        if (!before(entry, _heap[parent]))
            break;
        _heap[hole] = _heap[parent];
        hole = parent;
    }
    _heap[hole] = entry;
}

EventQueue::HeapEntry
EventQueue::popHeap()
{
    HeapEntry top = _heap.front();
    HeapEntry last = _heap.back();
    _heap.pop_back();
    if (!_heap.empty()) {
        // Sift the former last element down from the root.
        std::size_t hole = 0;
        std::size_t size = _heap.size();
        while (true) {
            std::size_t first_child = hole * arity + 1;
            if (first_child >= size)
                break;
            std::size_t best = first_child;
            std::size_t end = std::min(first_child + arity, size);
            for (std::size_t c = first_child + 1; c < end; ++c) {
                if (before(_heap[c], _heap[best]))
                    best = c;
            }
            if (!before(_heap[best], last))
                break;
            _heap[hole] = _heap[best];
            hole = best;
        }
        _heap[hole] = last;
    }
    return top;
}

void
EventQueue::executeNext()
{
    // The callable must be moved out before invocation: the callback may
    // schedule further events and reallocate/rotate the containers.
    Tick when;
    InlineEvent fn;
    if (fifoIsNext()) {
        when = _fifo.front().when;
        fn = std::move(_fifo.front().fn);
        _fifo.pop_front();
    } else {
        HeapEntry top = popHeap();
        when = top.when;
        fn = std::move(_slots[top.slot]);
        _freeSlots.push_back(top.slot);
    }
    _curTick = when;
    ++_eventsExecuted;
    fn();
}

bool
EventQueue::run(Tick limit, std::uint64_t max_events)
{
    const std::uint64_t budget_end =
        max_events != 0 ? _eventsExecuted + max_events : 0;
    while (pending() > 0) {
        if (budget_end != 0 && _eventsExecuted >= budget_end)
            return false;
        if (nextWhen() > limit) {
            _curTick = limit;
            return false;
        }
        executeNext();
    }
    return true;
}

std::uint64_t
EventQueue::runEvents(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (executed < max_events && pending() > 0) {
        executeNext();
        ++executed;
    }
    return executed;
}

void
EventQueue::reset()
{
    // Destroying the pending InlineEvents parks their spilled blocks
    // back on _pool; vector capacity is retained.
    _heap.clear();
    _slots.clear();
    _freeSlots.clear();
    _fifo.clear();
    _curTick = 0;
    _nextSeq = 0;
    _eventsExecuted = 0;
}

} // namespace drf
