#include "sim/event_queue.hh"

#include <algorithm>

namespace drf
{

void
EventQueue::pushHeap(HeapEntry entry)
{
    // Sift up with hole moves: the new entry is held in a register-local
    // temporary while ancestors shift down, costing one 24-byte copy per
    // level instead of a swap's three.
    std::size_t hole = _heap.size();
    _heap.push_back(entry);
    while (hole > 0) {
        std::size_t parent = (hole - 1) / arity;
        if (!before(entry, _heap[parent]))
            break;
        _heap[hole] = _heap[parent];
        hole = parent;
    }
    _heap[hole] = entry;
}

EventQueue::HeapEntry
EventQueue::popHeap()
{
    HeapEntry top = _heap.front();
    HeapEntry last = _heap.back();
    _heap.pop_back();
    if (!_heap.empty()) {
        // Sift the former last element down from the root.
        std::size_t hole = 0;
        std::size_t size = _heap.size();
        while (true) {
            std::size_t first_child = hole * arity + 1;
            if (first_child >= size)
                break;
            std::size_t best = first_child;
            std::size_t end = std::min(first_child + arity, size);
            for (std::size_t c = first_child + 1; c < end; ++c) {
                if (before(_heap[c], _heap[best]))
                    best = c;
            }
            if (!before(_heap[best], last))
                break;
            _heap[hole] = _heap[best];
            hole = best;
        }
        _heap[hole] = last;
    }
    return top;
}

void
EventQueue::executeNext()
{
    // The callable must be moved out before invocation: the callback may
    // schedule further events and reallocate/rotate the containers.
    const Tick t = nextWhen();
    advanceTo(t);
    // After migration every tick-t event is in t's bucket or the FIFO,
    // and all bucket sequence numbers precede all FIFO ones for t.
    const std::size_t idx = static_cast<std::size_t>(t & wheelMask);
    WheelBucket &bucket = _wheel[idx];
    InlineEvent fn;
    if (!bucket.empty()) {
        fn = wheelPop(bucket, idx);
    } else {
        assert(!fifoEmpty() && _fifo[_fifoHead].when == t);
        fn = popFifo();
    }
    ++_eventsExecuted;
    fn();
}

bool
EventQueue::run(Tick limit, std::uint64_t max_events)
{
    const std::uint64_t budget_end =
        max_events != 0 ? _eventsExecuted + max_events : 0;

    // Tick-batched dispatch. Wheel-bucket entries for tick t can only be
    // scheduled before the tick begins (a same-tick schedule goes to the
    // FIFO), so every bucket entry at tick t precedes every FIFO entry
    // at tick t in sequence order; draining bucket-then-FIFO per tick
    // replicates strict (when, seq) order without a comparison per
    // event. Resuming mid-tick (after a budget stop) is covered too:
    // leftover bucket entries still predate every FIFO entry, and
    // wheelNextTick scans from the current tick's own bucket.
    while (pending() > 0) {
        if (budget_end != 0 && _eventsExecuted >= budget_end)
            return false;
        const Tick t = nextWhen();
        if (t > limit) {
            advanceTo(limit);
            return false;
        }
        advanceTo(t);

        const std::size_t idx = static_cast<std::size_t>(t & wheelMask);
        WheelBucket &bucket = _wheel[idx];
        while (!bucket.empty()) {
            if (budget_end != 0 && _eventsExecuted >= budget_end)
                return false;
            InlineEvent fn = wheelPop(bucket, idx);
            ++_eventsExecuted;
            fn();
        }
        while (!fifoEmpty()) {
            if (budget_end != 0 && _eventsExecuted >= budget_end)
                return false;
            InlineEvent fn = popFifo();
            ++_eventsExecuted;
            fn();
        }
    }
    return true;
}

std::uint64_t
EventQueue::runEvents(std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (executed < max_events && pending() > 0) {
        executeNext();
        ++executed;
    }
    return executed;
}

void
EventQueue::reset()
{
    // Destroying the pending InlineEvents parks their spilled blocks
    // back on _pool; vector capacity is retained.
    _heap.clear();
    _slots.clear();
    _freeSlots.clear();
    for (WheelBucket &bucket : _wheel) {
        bucket.entries.clear();
        bucket.head = 0;
    }
    _wheelOcc.fill(0);
    _wheelCount = 0;
    _fifo.clear();
    _fifoHead = 0;
    _curTick = 0;
    _nextSeq = 0;
    _eventsExecuted = 0;
}

} // namespace drf
