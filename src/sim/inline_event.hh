/**
 * @file
 * Small-buffer-optimized, type-erased event callable and its recycling
 * block pool.
 *
 * The event queue executes hundreds of millions of callbacks per testing
 * campaign, which made the original std::function<void()> entries the
 * hottest allocation site in the whole simulator. InlineEvent replaces
 * them:
 *
 *  - callables whose captures fit in 32 bytes (the this-pointer +
 *    a couple of scalars case, i.e. almost every controller wakeup)
 *    are stored inline in the queue entry — no allocation at all;
 *  - larger callables (e.g. a port delivery capturing a whole Packet)
 *    are placed in fixed-size blocks recycled through an EventBlockPool,
 *    so steady-state simulation performs no malloc/free per event;
 *  - trivially copyable captures relocate with a fixed-size memcpy,
 *    which keeps heap sifts cheap.
 *
 * Neither type is thread-safe on its own: a pool and the events built
 * from it belong to exactly one EventQueue, and every EventQueue belongs
 * to exactly one shard thread (see src/campaign/).
 */

#ifndef DRF_SIM_INLINE_EVENT_HH
#define DRF_SIM_INLINE_EVENT_HH

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace drf
{

/**
 * Recycler for the out-of-line storage of large event captures.
 *
 * Requests up to @c blockBytes are served from a free list of uniform
 * blocks (allocated on demand, returned on event destruction), so the
 * steady-state cost of a large-capture event is a pointer pop/push.
 * Oversized requests fall back to plain operator new/delete.
 */
class EventBlockPool
{
  public:
    /** Payload capacity of a recycled block. */
    static constexpr std::size_t blockBytes = 256;

    EventBlockPool() = default;

    EventBlockPool(const EventBlockPool &) = delete;
    EventBlockPool &operator=(const EventBlockPool &) = delete;

    ~EventBlockPool()
    {
        for (void *header : _free)
            ::operator delete(header);
    }

    /**
     * Acquire storage for @p bytes of payload. The returned pointer is
     * aligned for any type and must be released with release().
     */
    void *
    acquire(std::size_t bytes)
    {
        if (bytes <= blockBytes) {
            Header *h;
            if (!_free.empty()) {
                h = static_cast<Header *>(_free.back());
                _free.pop_back();
            } else {
                h = static_cast<Header *>(
                    ::operator new(sizeof(Header) + blockBytes));
            }
            h->pool = this;
            return h + 1;
        }
        Header *h = static_cast<Header *>(
            ::operator new(sizeof(Header) + bytes));
        h->pool = nullptr; // oversized: never recycled
        return h + 1;
    }

    /** Return storage obtained from any pool's acquire(). */
    static void
    release(void *payload) noexcept
    {
        Header *h = static_cast<Header *>(payload) - 1;
        EventBlockPool *pool = h->pool;
        if (pool != nullptr && pool->_free.size() < maxCached) {
            pool->_free.push_back(h);
            return;
        }
        ::operator delete(h);
    }

    /** Blocks currently parked on the free list (for tests). */
    std::size_t cachedBlocks() const { return _free.size(); }

  private:
    /** Prefix of every block; keeps the payload max-aligned. */
    struct alignas(std::max_align_t) Header
    {
        EventBlockPool *pool;
    };

    /** Free-list bound: beyond this, blocks are simply freed. */
    static constexpr std::size_t maxCached = 1024;

    std::vector<void *> _free; ///< parked Header pointers
};

/**
 * A move-only type-erased void() callable with 32 bytes of inline
 * capture storage and pool-backed spill for larger captures.
 */
class InlineEvent
{
  public:
    /** Captures up to this size (and max_align_t aligned) stay inline. */
    static constexpr std::size_t inlineCapacity = 32;

    InlineEvent() noexcept : _ops(nullptr) {}

    /** Wrap @p fn, spilling oversized captures into @p pool. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent>>>
    InlineEvent(F &&fn, EventBlockPool &pool)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(_storage))
                Fn(std::forward<F>(fn));
            _ops = &inlineOps<Fn>;
        } else {
            void *block = pool.acquire(sizeof(Fn));
            ::new (block) Fn(std::forward<F>(fn));
            ptrSlot() = block;
            _ops = &heapOps<Fn>;
        }
    }

    InlineEvent(InlineEvent &&other) noexcept : _ops(other._ops)
    {
        if (_ops != nullptr) {
            _ops->relocate(other._storage, _storage);
            other._ops = nullptr;
        }
    }

    InlineEvent &
    operator=(InlineEvent &&other) noexcept
    {
        if (this != &other) {
            if (_ops != nullptr)
                _ops->destroy(_storage);
            _ops = other._ops;
            if (_ops != nullptr) {
                _ops->relocate(other._storage, _storage);
                other._ops = nullptr;
            }
        }
        return *this;
    }

    InlineEvent(const InlineEvent &) = delete;
    InlineEvent &operator=(const InlineEvent &) = delete;

    ~InlineEvent()
    {
        if (_ops != nullptr)
            _ops->destroy(_storage);
    }

    /** True if a callable is held. */
    explicit operator bool() const { return _ops != nullptr; }

    /** Execute the callable. @pre bool(*this) */
    void
    operator()()
    {
        assert(_ops != nullptr && "invoking an empty event");
        _ops->invoke(_storage);
    }

    /** True if this callable's capture lives inline (for tests). */
    bool
    storedInline() const
    {
        return _ops != nullptr && _ops->isInline;
    }

  private:
    /** Per-capture-type operations, shared by all instances. */
    struct Ops
    {
        void (*invoke)(void *storage);
        void (*relocate)(void *from, void *to) noexcept;
        void (*destroy)(void *storage) noexcept;
        bool isInline;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineCapacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    void *&
    ptrSlot()
    {
        return *reinterpret_cast<void **>(_storage);
    }

    static void *
    heapPayload(void *storage)
    {
        return *reinterpret_cast<void **>(storage);
    }

    template <typename Fn>
    static Fn *
    inlinePayload(void *storage)
    {
        return std::launder(reinterpret_cast<Fn *>(storage));
    }

    template <typename Fn>
    static void
    inlineInvoke(void *storage)
    {
        (*inlinePayload<Fn>(storage))();
    }

    template <typename Fn>
    static void
    inlineRelocate(void *from, void *to) noexcept
    {
        if constexpr (std::is_trivially_copyable_v<Fn>) {
            std::memcpy(to, from, sizeof(Fn));
        } else {
            Fn *src = inlinePayload<Fn>(from);
            ::new (to) Fn(std::move(*src));
            src->~Fn();
        }
    }

    template <typename Fn>
    static void
    inlineDestroy(void *storage) noexcept
    {
        inlinePayload<Fn>(storage)->~Fn();
    }

    template <typename Fn>
    static void
    heapInvoke(void *storage)
    {
        (*static_cast<Fn *>(heapPayload(storage)))();
    }

    static void
    heapRelocate(void *from, void *to) noexcept
    {
        std::memcpy(to, from, sizeof(void *));
    }

    template <typename Fn>
    static void
    heapDestroy(void *storage) noexcept
    {
        void *payload = heapPayload(storage);
        static_cast<Fn *>(payload)->~Fn();
        EventBlockPool::release(payload);
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {&inlineInvoke<Fn>,
                                      &inlineRelocate<Fn>,
                                      &inlineDestroy<Fn>, true};

    template <typename Fn>
    static constexpr Ops heapOps = {&heapInvoke<Fn>, &heapRelocate,
                                    &heapDestroy<Fn>, false};

    alignas(std::max_align_t) unsigned char _storage[inlineCapacity];
    const Ops *_ops;
};

} // namespace drf

#endif // DRF_SIM_INLINE_EVENT_HH
