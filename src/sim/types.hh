/**
 * @file
 * Fundamental simulator types shared by every module.
 *
 * The simulator is tick based: one tick corresponds to one cycle of the
 * coherence fabric's clock. All addresses are byte addresses in a flat
 * physical address space, as seen by the Ruby-like memory system.
 */

#ifndef DRF_SIM_TYPES_HH
#define DRF_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace drf
{

/** Simulated time, in cycles of the memory-system clock. */
using Tick = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Identifier for a requestor (tester thread, CPU core, DMA engine). */
using RequestorId = std::uint32_t;

/** Monotonically increasing identifier for in-flight transactions. */
using PacketId = std::uint64_t;

/** A tick value that is never reached; used as "no deadline". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** An address value used as "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/**
 * Return the cache-line-aligned base of @p addr for a power-of-two
 * @p line_size.
 */
constexpr Addr
lineAlign(Addr addr, Addr line_size)
{
    return addr & ~(line_size - 1);
}

/** Return the byte offset of @p addr within its cache line. */
constexpr Addr
lineOffset(Addr addr, Addr line_size)
{
    return addr & (line_size - 1);
}

} // namespace drf

#endif // DRF_SIM_TYPES_HH
