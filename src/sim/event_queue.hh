/**
 * @file
 * Deterministic discrete-event queue.
 *
 * This is the heart of the Ruby-like substrate: every port delivery, cache
 * controller wakeup, memory response, and tester check runs as an event.
 * Events scheduled for the same tick execute in scheduling order (a
 * monotonically increasing sequence number breaks ties), which makes every
 * simulation bit-for-bit reproducible for a given seed.
 *
 * The implementation is tuned for the schedule/execute hot path, which a
 * testing campaign hits hundreds of millions of times:
 *
 *  - callables are InlineEvents (32-byte small-buffer callables backed by
 *    a recycling block pool) instead of std::functions, so scheduling
 *    performs no per-event heap allocation in steady state;
 *  - events within the 256-tick horizon go into a timing wheel: one FIFO
 *    bucket per tick, O(1) push and pop. Almost every event a simulation
 *    schedules is a small fixed latency ahead (port hops, recycle delays,
 *    memory latency), so the wheel absorbs nearly all traffic. Bucket
 *    append order equals sequence order: for any tick t, every event is
 *    scheduled either before t begins (appended while seq grows
 *    monotonically) or at t itself (routed to the same-tick FIFO, never
 *    the bucket), and a bucket is fully drained before its index can be
 *    reused (a tick t + 256 schedule is beyond the horizon by exactly one
 *    tick and goes to the heap);
 *  - events at or beyond the horizon go to a hand-rolled 4-ary min-heap
 *    on (when, seq): heap records are 24-byte trivially-copyable (when,
 *    seq, slot) triples; the InlineEvent payloads sit still in a
 *    free-listed slot slab, so a sift never relocates capture storage.
 *    Whenever the current tick advances, heap entries that entered the
 *    horizon migrate into the wheel — in (when, seq) pop order, and
 *    before any event of the new tick runs, so migrated entries always
 *    precede later same-bucket appends in sequence order;
 *  - events scheduled for the *current* tick bypass both structures and
 *    go through a FIFO (scheduleNow / schedule(curTick(), ..)): because
 *    curTick never decreases and sequence numbers only grow, the FIFO is
 *    intrinsically sorted;
 *  - run() dispatches tick-batched: wheel-bucket entries for tick t are
 *    always scheduled before tick t begins, so every bucket sequence
 *    number precedes every FIFO sequence number of the same tick. The
 *    drain loop therefore empties the bucket and then the FIFO with no
 *    per-event (when, seq) comparison, executing the exact order a
 *    single comparing heap would.
 */

#ifndef DRF_SIM_EVENT_QUEUE_HH
#define DRF_SIM_EVENT_QUEUE_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/inline_event.hh"
#include "sim/types.hh"

namespace drf
{

/**
 * Generic callback type. Only kept for signatures that store callbacks
 * outside the event queue (the queue itself wraps callables in
 * InlineEvent without going through std::function).
 */
using EventFunc = std::function<void()>;

/**
 * A tick-ordered queue of callbacks with deterministic same-tick ordering.
 */
class EventQueue
{
  public:
    EventQueue() { _heap.reserve(initialCapacity); }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Number of events executed so far (a proxy for simulation work). */
    std::uint64_t eventsExecuted() const { return _eventsExecuted; }

    /** Number of events currently pending. */
    std::size_t
    pending() const
    {
        return _heap.size() + _wheelCount + (_fifo.size() - _fifoHead);
    }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= curTick(); scheduling in the past is a simulator bug
     *      and triggers an assertion.
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        assert(when >= _curTick && "event scheduled in the past");
        if (when == _curTick) {
            // Same-tick fast path: the FIFO stays sorted by construction
            // (see file comment), so no sift is needed.
            _fifo.push_back(FifoEntry{when, _nextSeq++,
                                      InlineEvent(std::forward<F>(fn),
                                                  _pool)});
            return;
        }
        const std::uint64_t seq = _nextSeq++;
        if (when - _curTick < wheelSpan) {
            // Near-future fast path: O(1) bucket append, no heap sift.
            // The bucket's append order encodes @p seq (file comment).
            wheelPush(when, InlineEvent(std::forward<F>(fn), _pool));
            return;
        }
        std::uint32_t slot =
            acquireSlot(InlineEvent(std::forward<F>(fn), _pool));
        pushHeap(HeapEntry{when, seq, slot});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&fn)
    {
        schedule(_curTick + delay, std::forward<F>(fn));
    }

    /** Schedule @p fn at the current tick (after all pending work here). */
    template <typename F>
    void
    scheduleNow(F &&fn)
    {
        _fifo.push_back(FifoEntry{_curTick, _nextSeq++,
                                  InlineEvent(std::forward<F>(fn),
                                              _pool)});
    }

    /**
     * Run events until the queue drains, @p limit ticks is reached, or
     * @p max_events further events have executed.
     *
     * @param limit      Absolute tick bound (events at exactly @p limit
     *                   still run).
     * @param max_events Event budget for this call; 0 means unbounded.
     *                   The campaign supervisor uses it to bound a
     *                   livelocked shard that keeps making "progress"
     *                   without advancing toward completion.
     * @return true if the queue drained, false if a bound stopped us.
     */
    bool run(Tick limit = maxTick, std::uint64_t max_events = 0);

    /**
     * Run at most @p max_events events. Useful for incremental draining in
     * tests.
     *
     * @return number of events executed.
     */
    std::uint64_t runEvents(std::uint64_t max_events);

    /**
     * Drop all pending events and reset time to zero. Recycled event
     * blocks and heap capacity are retained for the next run.
     */
    void reset();

  private:
    /**
     * One heap record; (when, seq) totally orders all events, slot
     * indexes the payload in _slots. Trivially copyable so heap sifts
     * are plain 24-byte moves.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** One current-tick event; the payload rides along (never sifted). */
    struct FifoEntry
    {
        Tick when;
        std::uint64_t seq;
        InlineEvent fn;
    };

    /** Initial heap capacity; avoids early growth reallocations. */
    static constexpr std::size_t initialCapacity = 64;

    /** Heap arity: shallower sifts, better locality than binary. */
    static constexpr std::size_t arity = 4;

    /** Ticks covered by the timing wheel (one bucket per tick). */
    static constexpr Tick wheelSpan = 256;
    static constexpr Tick wheelMask = wheelSpan - 1;

    /** One wheel bucket: seq-ordered events of a single pending tick. */
    struct WheelBucket
    {
        std::vector<InlineEvent> entries;
        std::size_t head = 0; ///< consumed prefix of the ring

        bool empty() const { return head == entries.size(); }
    };

    template <typename A, typename B>
    static bool
    before(const A &a, const B &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** Park @p fn in a slot and return its index. */
    std::uint32_t
    acquireSlot(InlineEvent &&fn)
    {
        if (!_freeSlots.empty()) {
            std::uint32_t slot = _freeSlots.back();
            _freeSlots.pop_back();
            _slots[slot] = std::move(fn);
            return slot;
        }
        _slots.push_back(std::move(fn));
        return static_cast<std::uint32_t>(_slots.size() - 1);
    }

    bool fifoEmpty() const { return _fifoHead == _fifo.size(); }

    /** Append an event for tick @p when to its wheel bucket. */
    void
    wheelPush(Tick when, InlineEvent &&fn)
    {
        const std::size_t idx = static_cast<std::size_t>(when & wheelMask);
        _wheel[idx].entries.push_back(std::move(fn));
        _wheelOcc[idx >> 6] |= 1ull << (idx & 63);
        ++_wheelCount;
    }

    /** Pop the front of @p bucket; compacts and clears occupancy. */
    InlineEvent
    wheelPop(WheelBucket &bucket, std::size_t idx)
    {
        InlineEvent fn = std::move(bucket.entries[bucket.head]);
        if (++bucket.head == bucket.entries.size()) {
            bucket.entries.clear();
            bucket.head = 0;
            _wheelOcc[idx >> 6] &= ~(1ull << (idx & 63));
        }
        --_wheelCount;
        return fn;
    }

    /**
     * Earliest pending wheel tick at or after curTick, or maxTick if the
     * wheel is empty. A word-at-a-time scan of the occupancy bitmap.
     */
    Tick
    wheelNextTick() const
    {
        if (_wheelCount == 0)
            return maxTick;
        const std::size_t start =
            static_cast<std::size_t>(_curTick & wheelMask);
        for (Tick off = 0; off < wheelSpan;) {
            const std::size_t idx =
                (start + static_cast<std::size_t>(off)) & wheelMask;
            const std::uint64_t bits = _wheelOcc[idx >> 6] >> (idx & 63);
            if (bits != 0) {
                return _curTick + off +
                       static_cast<Tick>(__builtin_ctzll(bits));
            }
            off += 64 - static_cast<Tick>(idx & 63);
        }
        return maxTick;
    }

    /**
     * Advance the current tick to @p t, migrating heap events that have
     * entered the wheel horizon. Must run before any event of tick @p t
     * executes so migrated entries precede later same-bucket appends.
     */
    void
    advanceTo(Tick t)
    {
        _curTick = t;
        while (!_heap.empty() && _heap.front().when - t < wheelSpan) {
            HeapEntry top = popHeap();
            wheelPush(top.when, std::move(_slots[top.slot]));
            _freeSlots.push_back(top.slot);
        }
    }

    /** Tick of the earliest pending event. @pre pending() > 0 */
    Tick
    nextWhen() const
    {
        Tick t = fifoEmpty() ? maxTick : _fifo[_fifoHead].when;
        const Tick w = wheelNextTick();
        if (w < t)
            t = w;
        if (!_heap.empty() && _heap.front().when < t)
            t = _heap.front().when;
        return t;
    }

    /** Pop the FIFO front; compacts the ring when it empties. */
    InlineEvent
    popFifo()
    {
        InlineEvent fn = std::move(_fifo[_fifoHead].fn);
        if (++_fifoHead == _fifo.size()) {
            _fifo.clear();
            _fifoHead = 0;
        }
        return fn;
    }

    void pushHeap(HeapEntry entry);
    HeapEntry popHeap();

    /** Pop and execute the earliest event. @pre queue not empty. */
    void executeNext();

    // _pool is declared before the payload containers so it outlives
    // them: destroying events returns their spilled blocks to the pool.
    EventBlockPool _pool;
    std::vector<HeapEntry> _heap; ///< far events: 4-ary min-heap
    std::vector<InlineEvent> _slots;      ///< heap payload slab
    std::vector<std::uint32_t> _freeSlots; ///< recycled slab indices
    std::array<WheelBucket, wheelSpan> _wheel; ///< near events, per tick
    std::array<std::uint64_t, wheelSpan / 64> _wheelOcc{}; ///< bucket bits
    std::size_t _wheelCount = 0;  ///< events parked in the wheel
    std::vector<FifoEntry> _fifo; ///< current-tick events, seq-sorted
    std::size_t _fifoHead = 0;    ///< consumed prefix of _fifo
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _eventsExecuted = 0;
};

} // namespace drf

#endif // DRF_SIM_EVENT_QUEUE_HH
