/**
 * @file
 * Deterministic discrete-event queue.
 *
 * This is the heart of the Ruby-like substrate: every port delivery, cache
 * controller wakeup, memory response, and tester check runs as an event.
 * Events scheduled for the same tick execute in scheduling order (a
 * monotonically increasing sequence number breaks ties), which makes every
 * simulation bit-for-bit reproducible for a given seed.
 *
 * The implementation is tuned for the schedule/execute hot path, which a
 * testing campaign hits hundreds of millions of times:
 *
 *  - callables are InlineEvents (32-byte small-buffer callables backed by
 *    a recycling block pool) instead of std::functions, so scheduling
 *    performs no per-event heap allocation in steady state;
 *  - the pending set is a hand-rolled 4-ary min-heap on (when, seq):
 *    shallower than a binary heap and sifted with hole moves rather than
 *    swaps. Heap records are 24-byte trivially-copyable (when, seq, slot)
 *    triples; the InlineEvent payloads sit still in a free-listed slot
 *    slab, so a sift never relocates capture storage;
 *  - events scheduled for the *current* tick bypass the heap entirely and
 *    go through a FIFO (scheduleNow / schedule(curTick(), ..)): because
 *    curTick never decreases and sequence numbers only grow, the FIFO is
 *    intrinsically sorted, and the next event is simply the smaller of
 *    heap-top and FIFO-front under the same (when, seq) order. Execution
 *    order is therefore bit-for-bit identical to the single-heap queue.
 */

#ifndef DRF_SIM_EVENT_QUEUE_HH
#define DRF_SIM_EVENT_QUEUE_HH

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "sim/inline_event.hh"
#include "sim/types.hh"

namespace drf
{

/**
 * Generic callback type. Only kept for signatures that store callbacks
 * outside the event queue (the queue itself wraps callables in
 * InlineEvent without going through std::function).
 */
using EventFunc = std::function<void()>;

/**
 * A tick-ordered queue of callbacks with deterministic same-tick ordering.
 */
class EventQueue
{
  public:
    EventQueue() { _heap.reserve(initialCapacity); }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Number of events executed so far (a proxy for simulation work). */
    std::uint64_t eventsExecuted() const { return _eventsExecuted; }

    /** Number of events currently pending. */
    std::size_t pending() const { return _heap.size() + _fifo.size(); }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= curTick(); scheduling in the past is a simulator bug
     *      and triggers an assertion.
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        assert(when >= _curTick && "event scheduled in the past");
        if (when == _curTick) {
            // Same-tick fast path: the FIFO stays sorted by construction
            // (see file comment), so no sift is needed.
            _fifo.push_back(FifoEntry{when, _nextSeq++,
                                      InlineEvent(std::forward<F>(fn),
                                                  _pool)});
            return;
        }
        std::uint32_t slot =
            acquireSlot(InlineEvent(std::forward<F>(fn), _pool));
        pushHeap(HeapEntry{when, _nextSeq++, slot});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&fn)
    {
        schedule(_curTick + delay, std::forward<F>(fn));
    }

    /** Schedule @p fn at the current tick (after all pending work here). */
    template <typename F>
    void
    scheduleNow(F &&fn)
    {
        _fifo.push_back(FifoEntry{_curTick, _nextSeq++,
                                  InlineEvent(std::forward<F>(fn),
                                              _pool)});
    }

    /**
     * Run events until the queue drains, @p limit ticks is reached, or
     * @p max_events further events have executed.
     *
     * @param limit      Absolute tick bound (events at exactly @p limit
     *                   still run).
     * @param max_events Event budget for this call; 0 means unbounded.
     *                   The campaign supervisor uses it to bound a
     *                   livelocked shard that keeps making "progress"
     *                   without advancing toward completion.
     * @return true if the queue drained, false if a bound stopped us.
     */
    bool run(Tick limit = maxTick, std::uint64_t max_events = 0);

    /**
     * Run at most @p max_events events. Useful for incremental draining in
     * tests.
     *
     * @return number of events executed.
     */
    std::uint64_t runEvents(std::uint64_t max_events);

    /**
     * Drop all pending events and reset time to zero. Recycled event
     * blocks and heap capacity are retained for the next run.
     */
    void reset();

  private:
    /**
     * One heap record; (when, seq) totally orders all events, slot
     * indexes the payload in _slots. Trivially copyable so heap sifts
     * are plain 24-byte moves.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** One current-tick event; the payload rides along (never sifted). */
    struct FifoEntry
    {
        Tick when;
        std::uint64_t seq;
        InlineEvent fn;
    };

    /** Initial heap capacity; avoids early growth reallocations. */
    static constexpr std::size_t initialCapacity = 64;

    /** Heap arity: shallower sifts, better locality than binary. */
    static constexpr std::size_t arity = 4;

    template <typename A, typename B>
    static bool
    before(const A &a, const B &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** Park @p fn in a slot and return its index. */
    std::uint32_t
    acquireSlot(InlineEvent &&fn)
    {
        if (!_freeSlots.empty()) {
            std::uint32_t slot = _freeSlots.back();
            _freeSlots.pop_back();
            _slots[slot] = std::move(fn);
            return slot;
        }
        _slots.push_back(std::move(fn));
        return static_cast<std::uint32_t>(_slots.size() - 1);
    }

    /** True if the next event (in (when, seq) order) is the FIFO front. */
    bool
    fifoIsNext() const
    {
        if (_fifo.empty())
            return false;
        if (_heap.empty())
            return true;
        return before(_fifo.front(), _heap.front());
    }

    /** Tick of the earliest pending event. @pre pending() > 0 */
    Tick
    nextWhen() const
    {
        return fifoIsNext() ? _fifo.front().when : _heap.front().when;
    }

    void pushHeap(HeapEntry entry);
    HeapEntry popHeap();

    /** Pop and execute the earliest event. @pre queue not empty. */
    void executeNext();

    // _pool is declared before the payload containers so it outlives
    // them: destroying events returns their spilled blocks to the pool.
    EventBlockPool _pool;
    std::vector<HeapEntry> _heap; ///< 4-ary min-heap on (when, seq)
    std::vector<InlineEvent> _slots;      ///< heap payload slab
    std::vector<std::uint32_t> _freeSlots; ///< recycled slab indices
    std::deque<FifoEntry> _fifo; ///< current-tick events, seq-sorted
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _eventsExecuted = 0;
};

} // namespace drf

#endif // DRF_SIM_EVENT_QUEUE_HH
