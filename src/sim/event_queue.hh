/**
 * @file
 * Deterministic discrete-event queue.
 *
 * This is the heart of the Ruby-like substrate: every port delivery, cache
 * controller wakeup, memory response, and tester check runs as an event.
 * Events scheduled for the same tick execute in scheduling order (a
 * monotonically increasing sequence number breaks ties), which makes every
 * simulation bit-for-bit reproducible for a given seed.
 */

#ifndef DRF_SIM_EVENT_QUEUE_HH
#define DRF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace drf
{

/** Callback type executed when an event fires. */
using EventFunc = std::function<void()>;

/**
 * A tick-ordered queue of callbacks with deterministic same-tick ordering.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Number of events executed so far (a proxy for simulation work). */
    std::uint64_t eventsExecuted() const { return _eventsExecuted; }

    /** Number of events currently pending. */
    std::size_t pending() const { return _queue.size(); }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= curTick(); scheduling in the past is a simulator bug
     *      and triggers an assertion.
     */
    void schedule(Tick when, EventFunc fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, EventFunc fn)
    {
        schedule(_curTick + delay, std::move(fn));
    }

    /**
     * Run events until the queue drains or @p limit ticks is reached.
     *
     * @param limit Absolute tick bound (events at exactly @p limit still
     *              run).
     * @return true if the queue drained, false if the limit stopped us.
     */
    bool run(Tick limit = maxTick);

    /**
     * Run at most @p max_events events. Useful for incremental draining in
     * tests.
     *
     * @return number of events executed.
     */
    std::uint64_t runEvents(std::uint64_t max_events);

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    /** One pending event; (when, seq) totally orders all events. */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFunc fn;

        /** Min-heap via std::*_heap's max-heap comparisons: invert. */
        bool
        operator<(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    /** Pop and execute the earliest event. @pre queue not empty. */
    void executeNext();

    std::vector<Entry> _queue; ///< binary heap (std::push/pop_heap)
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _eventsExecuted = 0;
};

} // namespace drf

#endif // DRF_SIM_EVENT_QUEUE_HH
