/**
 * @file
 * Seeded pseudo-random source used by the testers and workload generators.
 *
 * Every random decision in the framework flows through one Random instance
 * per top-level component so that a (seed, configuration) pair fully
 * determines a run — a failing test can always be replayed.
 */

#ifndef DRF_SIM_RANDOM_HH
#define DRF_SIM_RANDOM_HH

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace drf
{

/**
 * Thin deterministic wrapper around std::mt19937_64 with the helpers the
 * testers need (ranges, biased coins, choice, shuffling).
 */
class Random
{
  public:
    explicit Random(std::uint64_t seed) : _engine(seed) {}

    /** Uniform integer in [lo, hi], inclusive on both ends. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(_engine);
    }

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t
    below(std::uint64_t n)
    {
        assert(n > 0);
        return range(0, n - 1);
    }

    /** Biased coin: true with probability @p percent / 100. */
    bool
    pct(unsigned percent)
    {
        return range(0, 99) < percent;
    }

    /** Uniform real in [0, 1). */
    double
    real()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(_engine);
    }

    /** Uniformly choose one element of a non-empty vector. */
    template <typename T>
    const T &
    choice(const std::vector<T> &v)
    {
        assert(!v.empty());
        return v[below(v.size())];
    }

    /** Fisher-Yates shuffle, deterministic under this engine. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[below(i)]);
    }

    /** Fork an independent child stream (for per-thread determinism). */
    Random
    fork()
    {
        return Random(_engine());
    }

  private:
    std::mt19937_64 _engine;
};

} // namespace drf

#endif // DRF_SIM_RANDOM_HH
