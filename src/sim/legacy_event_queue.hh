/**
 * @file
 * The original std::function-based event queue, kept verbatim as a
 * validation oracle and benchmark baseline.
 *
 * The production EventQueue (event_queue.hh) replaced these entries with
 * small-buffer-optimized InlineEvents, a 4-ary heap, and a same-tick
 * FIFO fast path. Tests drive both queues with identical schedules and
 * assert identical firing orders (tests/test_queue_determinism.cc), and
 * bench/campaign_scaling.cc measures the speedup of the overhaul
 * against this implementation. To keep the comparison honest, the
 * method bodies live out of line in legacy_event_queue.cc exactly as
 * the original event_queue.cc had them — inlining them here would make
 * the baseline faster than the code being replaced ever was. Do not use
 * this class in new simulation code.
 */

#ifndef DRF_SIM_LEGACY_EVENT_QUEUE_HH
#define DRF_SIM_LEGACY_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace drf
{

/** Reference tick-ordered queue: std::function entries, binary heap. */
class LegacyEventQueue
{
  public:
    using EventFunc = std::function<void()>;

    LegacyEventQueue() = default;

    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    Tick curTick() const { return _curTick; }
    std::uint64_t eventsExecuted() const { return _eventsExecuted; }
    std::size_t pending() const { return _queue.size(); }

    void schedule(Tick when, EventFunc fn);

    void
    scheduleAfter(Tick delay, EventFunc fn)
    {
        schedule(_curTick + delay, std::move(fn));
    }

    bool run(Tick limit = maxTick);
    std::uint64_t runEvents(std::uint64_t max_events);
    void reset();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFunc fn;

        bool
        operator<(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    void executeNext();

    std::vector<Entry> _queue;
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _eventsExecuted = 0;
};

} // namespace drf

#endif // DRF_SIM_LEGACY_EVENT_QUEUE_HH
