/**
 * @file
 * Base class for named, clocked simulation components.
 */

#ifndef DRF_SIM_SIM_OBJECT_HH
#define DRF_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace drf
{

/**
 * A named component attached to an event queue. Mirrors gem5's SimObject:
 * it exists to give every piece of the system a stable name for tracing
 * and a shared notion of time.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), _eq(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Component instance name, e.g. "gpu.l1[3]". */
    const std::string &name() const { return _name; }

    /** The event queue this component schedules on. */
    EventQueue &eventq() { return _eq; }
    const EventQueue &eventq() const { return _eq; }

    /** Current simulated time. */
    Tick curTick() const { return _eq.curTick(); }

    /** Schedule a member callback @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&fn)
    {
        _eq.scheduleAfter(delay, std::forward<F>(fn));
    }

  private:
    std::string _name;
    EventQueue &_eq;
};

} // namespace drf

#endif // DRF_SIM_SIM_OBJECT_HH
