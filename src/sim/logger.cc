#include "sim/logger.hh"

#include <cstdio>
#include <cstdlib>

namespace drf
{

namespace
{

/** enabled() logic, factored so callers can hold the lock. */
bool
flagEnabled(bool all_enabled, const std::unordered_set<std::string> &flags,
            const std::string &flag)
{
    return all_enabled || flags.count(flag) > 0;
}

} // namespace

Logger &
Logger::get()
{
    static Logger instance;
    return instance;
}

Logger::Logger()
{
    if (const char *env = std::getenv("DRF_DEBUG_FLAGS")) {
        std::string flags(env);
        std::size_t start = 0;
        while (start <= flags.size()) {
            std::size_t comma = flags.find(',', start);
            if (comma == std::string::npos)
                comma = flags.size();
            if (comma > start)
                enable(flags.substr(start, comma - start));
            start = comma + 1;
        }
    }
}

void
Logger::enable(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (flag == "all")
        _allEnabled = true;
    else
        _flags.insert(flag);
}

void
Logger::disable(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (flag == "all")
        _allEnabled = false;
    else
        _flags.erase(flag);
}

void
Logger::disableAll()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _allEnabled = false;
    _flags.clear();
}

bool
Logger::enabled(const std::string &flag) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return flagEnabled(_allEnabled, _flags, flag);
}

void
Logger::record(Tick tick, const std::string &flag, const std::string &who,
               const std::string &msg)
{
    std::string line = std::to_string(tick) + ": " + who + " [" + flag +
                       "] " + msg;
    std::lock_guard<std::mutex> lock(_mutex);
    if (_historyDepth > 0) {
        _history.push_back(line);
        while (_history.size() > _historyDepth)
            _history.pop_front();
    }
    if (flagEnabled(_allEnabled, _flags, flag))
        std::printf("%s\n", line.c_str());
}

std::vector<std::string>
Logger::history() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return {_history.begin(), _history.end()};
}

void
Logger::dumpHistory() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::fprintf(stderr, "==== recent transaction history (%zu records)\n",
                 _history.size());
    for (const auto &line : _history)
        std::fprintf(stderr, "  %s\n", line.c_str());
}

void
Logger::setHistoryDepth(std::size_t depth)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _historyDepth = depth;
    while (_history.size() > _historyDepth)
        _history.pop_front();
}

void
Logger::clearHistory()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _history.clear();
}

} // namespace drf
