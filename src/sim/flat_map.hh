/**
 * @file
 * Open-addressed hash table keyed by 64-bit integers (addresses, packet
 * ids), replacing the node-based std::map containers that used to sit on
 * every coherence message.
 *
 * Design constraints, in order:
 *
 *  - Determinism. Probing uses a fixed multiplicative hash and linear
 *    probing with backward-shift deletion, so the table's layout — and
 *    therefore forEach() iteration order — is a pure function of the
 *    insert/erase history. No pointers, no per-process salt.
 *  - Zero steady-state allocation. Storage is three parallel vectors
 *    (keys, occupancy, values) that only ever grow; a table reserved to
 *    its working-set size at construction never touches the heap again.
 *  - Cheap values. Values are stored by value and moved during
 *    backward-shift deletion and rehash, so callers must not hold
 *    references across erase() or a growing insert (the protocol
 *    controllers re-fetch by key instead, exactly as they already did
 *    for std::map's iterator-invalidation rules on erase).
 *
 * Iteration order differs from std::map's sorted order. Call sites that
 * need sorted or minimum-key traversal (the GPU L2 write-through merge,
 * the tester watchdog) select the order explicitly; everything else is
 * order-independent (see DESIGN.md §10).
 */

#ifndef DRF_SIM_FLAT_MAP_HH
#define DRF_SIM_FLAT_MAP_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace drf
{

/** Open-addressed map from uint64 keys to movable values. */
template <typename V>
class FlatMap
{
  public:
    /** @param initial_slots Lower bound on the initial capacity. */
    explicit FlatMap(std::size_t initial_slots = 16)
    {
        rebuild(slotsFor(initial_slots));
    }

    /** Number of stored entries. */
    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    /** Current slot count (for tests and sizing decisions). */
    std::size_t capacity() const { return _keys.size(); }

    /** Grow so that @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = slotsFor(n);
        if (want > _keys.size())
            rehash(want);
    }

    /** Pointer to the value stored under @p key, or nullptr. */
    V *
    find(std::uint64_t key)
    {
        std::size_t i = probe(key);
        return _full[i] ? &_vals[i] : nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        std::size_t i = probe(key);
        return _full[i] ? &_vals[i] : nullptr;
    }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /** Fetch the value under @p key, default-constructing if absent. */
    V &
    operator[](std::uint64_t key)
    {
        std::size_t i = probe(key);
        if (_full[i])
            return _vals[i];
        return emplace(key, V{}).first;
    }

    /**
     * Insert @p value under @p key if absent (std::map::emplace
     * semantics: an existing entry is left untouched).
     *
     * @return the stored value and whether an insert happened.
     */
    std::pair<V &, bool>
    emplace(std::uint64_t key, V value)
    {
        if ((_size + 1) * 4 > _keys.size() * 3)
            rehash(_keys.size() * 2);
        std::size_t i = probe(key);
        if (_full[i])
            return {_vals[i], false};
        _keys[i] = key;
        _full[i] = 1;
        _vals[i] = std::move(value);
        ++_size;
        return {_vals[i], true};
    }

    /**
     * Remove the entry under @p key using backward-shift deletion (no
     * tombstones: probe distances stay minimal no matter how many
     * erasures a long run performs).
     *
     * @return true if an entry was removed.
     */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = probe(key);
        if (!_full[i])
            return false;
        const std::size_t mask = _keys.size() - 1;
        std::size_t hole = i;
        std::size_t next = (hole + 1) & mask;
        while (_full[next]) {
            std::size_t home = indexFor(_keys[next]);
            // An entry may backfill the hole only if doing so does not
            // move it before its home slot in probe order.
            std::size_t dist_next = (next - home) & mask;
            std::size_t dist_hole = (hole - home) & mask;
            if (dist_hole <= dist_next) {
                _keys[hole] = _keys[next];
                _vals[hole] = std::move(_vals[next]);
                hole = next;
            }
            next = (next + 1) & mask;
        }
        _full[hole] = 0;
        _vals[hole] = V{};
        --_size;
        return true;
    }

    /** Drop every entry, keeping the slot storage. */
    void
    clear()
    {
        std::fill(_full.begin(), _full.end(), std::uint8_t{0});
        for (V &v : _vals)
            v = V{};
        _size = 0;
    }

    /**
     * Visit every entry as fn(key, value&), in slot order (deterministic
     * for a given insert/erase history, but unrelated to key order).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < _keys.size(); ++i) {
            if (_full[i])
                fn(_keys[i], _vals[i]);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < _keys.size(); ++i) {
            if (_full[i])
                fn(_keys[i], _vals[i]);
        }
    }

  private:
    /** Fibonacci multiplicative hash: fixed, deterministic, well mixed. */
    std::size_t
    indexFor(std::uint64_t key) const
    {
        std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        h ^= h >> 32;
        return static_cast<std::size_t>(h) & (_keys.size() - 1);
    }

    /** First slot that holds @p key or is empty. */
    std::size_t
    probe(std::uint64_t key) const
    {
        const std::size_t mask = _keys.size() - 1;
        std::size_t i = indexFor(key);
        while (_full[i] && _keys[i] != key)
            i = (i + 1) & mask;
        return i;
    }

    /** Smallest power-of-two slot count that fits @p n at 75% load. */
    static std::size_t
    slotsFor(std::size_t n)
    {
        std::size_t slots = 16;
        while (slots * 3 < n * 4)
            slots *= 2;
        return slots;
    }

    void
    rebuild(std::size_t slots)
    {
        _keys.assign(slots, 0);
        _full.assign(slots, 0);
        _vals.clear();
        _vals.resize(slots);
        _size = 0;
    }

    void
    rehash(std::size_t slots)
    {
        std::vector<std::uint64_t> old_keys = std::move(_keys);
        std::vector<std::uint8_t> old_full = std::move(_full);
        std::vector<V> old_vals = std::move(_vals);
        rebuild(slots);
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_full[i])
                emplace(old_keys[i], std::move(old_vals[i]));
        }
    }

    std::vector<std::uint64_t> _keys;
    std::vector<std::uint8_t> _full;
    std::vector<V> _vals;
    std::size_t _size = 0;
};

} // namespace drf

#endif // DRF_SIM_FLAT_MAP_HH
