/**
 * @file
 * Minimal statistics package: named counters, distributions, and a
 * formatter. Modelled after gem5's Stats but only what the experiments
 * need.
 */

#ifndef DRF_SIM_STATS_HH
#define DRF_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace drf
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    explicit Counter(std::string name) : _name(std::move(name)) {}

    void inc(std::uint64_t by = 1) { _value += by; }
    std::uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }
    void reset() { _value = 0; }

  private:
    std::string _name;
    std::uint64_t _value = 0;
};

/**
 * A sampled distribution with mean/min/max and a handful of quantiles.
 * Keeps all samples; the workloads here are small enough that this is the
 * simplest correct choice.
 */
class Distribution
{
  public:
    explicit Distribution(std::string name) : _name(std::move(name)) {}

    void sample(double v) { _samples.push_back(v); }

    std::size_t count() const { return _samples.size(); }

    double
    mean() const
    {
        if (_samples.empty())
            return 0.0;
        double sum = 0.0;
        for (double v : _samples)
            sum += v;
        return sum / static_cast<double>(_samples.size());
    }

    double
    min() const
    {
        return _samples.empty()
            ? 0.0 : *std::min_element(_samples.begin(), _samples.end());
    }

    double
    max() const
    {
        return _samples.empty()
            ? 0.0 : *std::max_element(_samples.begin(), _samples.end());
    }

    /** q in [0,1]; nearest-rank quantile. */
    double
    quantile(double q) const
    {
        if (_samples.empty())
            return 0.0;
        std::vector<double> sorted(_samples);
        std::sort(sorted.begin(), sorted.end());
        std::size_t idx = static_cast<std::size_t>(
            q * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(idx, sorted.size() - 1)];
    }

    const std::string &name() const { return _name; }
    void reset() { _samples.clear(); }

  private:
    std::string _name;
    std::vector<double> _samples;
};

/**
 * A registry of counters belonging to one component, dumped as
 * "component.counter value" lines like gem5's stats.txt.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix) : _prefix(std::move(prefix)) {}

    /** Create-or-fetch a counter by short name. */
    Counter &
    counter(const std::string &name)
    {
        auto it = _counters.find(name);
        if (it == _counters.end()) {
            it = _counters.emplace(name, Counter(_prefix + "." + name))
                     .first;
        }
        return it->second;
    }

    /** Value of a counter, zero if never touched. */
    std::uint64_t
    value(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second.value();
    }

    void
    dump(std::ostream &os) const
    {
        for (const auto &[short_name, ctr] : _counters)
            os << ctr.name() << " " << ctr.value() << "\n";
    }

    void
    reset()
    {
        for (auto &[short_name, ctr] : _counters)
            ctr.reset();
    }

  private:
    std::string _prefix;
    std::map<std::string, Counter> _counters;
};

} // namespace drf

#endif // DRF_SIM_STATS_HH
