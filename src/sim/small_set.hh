/**
 * @file
 * Sorted-vector integer set for the directory's sharer lists.
 *
 * The directory previously kept CPU and GPU sharers in std::set<int>,
 * paying a node allocation per insert on the hottest GPU path (every
 * read miss adds an L2 sharer). A sorted vector preserves the property
 * the protocol actually relies on — iteration in ascending id order, so
 * probe fan-out is deterministic — while insert/erase on the handful of
 * sharers a line ever has is a memmove within one cache line, and a
 * cleared set keeps its capacity for the next transaction.
 */

#ifndef DRF_SIM_SMALL_SET_HH
#define DRF_SIM_SMALL_SET_HH

#include <algorithm>
#include <vector>

namespace drf
{

/** Set of ints with sorted iteration, backed by a vector. */
class SmallIntSet
{
  public:
    using const_iterator = std::vector<int>::const_iterator;

    bool empty() const { return _items.empty(); }
    std::size_t size() const { return _items.size(); }

    const_iterator begin() const { return _items.begin(); }
    const_iterator end() const { return _items.end(); }

    std::size_t
    count(int v) const
    {
        return std::binary_search(_items.begin(), _items.end(), v) ? 1 : 0;
    }

    /** Insert @p v, keeping the elements sorted. No-op if present. */
    void
    insert(int v)
    {
        auto it = std::lower_bound(_items.begin(), _items.end(), v);
        if (it == _items.end() || *it != v)
            _items.insert(it, v);
    }

    /** Remove @p v if present. @return number of elements removed. */
    std::size_t
    erase(int v)
    {
        auto it = std::lower_bound(_items.begin(), _items.end(), v);
        if (it == _items.end() || *it != v)
            return 0;
        _items.erase(it);
        return 1;
    }

    /** Drop every element, keeping the capacity. */
    void clear() { _items.clear(); }

  private:
    std::vector<int> _items;
};

} // namespace drf

#endif // DRF_SIM_SMALL_SET_HH
