file(REMOVE_RECURSE
  "libdrf_proto.a"
)
