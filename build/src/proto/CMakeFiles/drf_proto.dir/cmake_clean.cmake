file(REMOVE_RECURSE
  "CMakeFiles/drf_proto.dir/cpu_cache.cc.o"
  "CMakeFiles/drf_proto.dir/cpu_cache.cc.o.d"
  "CMakeFiles/drf_proto.dir/directory.cc.o"
  "CMakeFiles/drf_proto.dir/directory.cc.o.d"
  "CMakeFiles/drf_proto.dir/fault.cc.o"
  "CMakeFiles/drf_proto.dir/fault.cc.o.d"
  "CMakeFiles/drf_proto.dir/gpu_l1.cc.o"
  "CMakeFiles/drf_proto.dir/gpu_l1.cc.o.d"
  "CMakeFiles/drf_proto.dir/gpu_l2.cc.o"
  "CMakeFiles/drf_proto.dir/gpu_l2.cc.o.d"
  "libdrf_proto.a"
  "libdrf_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drf_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
