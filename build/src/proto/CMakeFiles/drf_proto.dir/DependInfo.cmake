
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/cpu_cache.cc" "src/proto/CMakeFiles/drf_proto.dir/cpu_cache.cc.o" "gcc" "src/proto/CMakeFiles/drf_proto.dir/cpu_cache.cc.o.d"
  "/root/repo/src/proto/directory.cc" "src/proto/CMakeFiles/drf_proto.dir/directory.cc.o" "gcc" "src/proto/CMakeFiles/drf_proto.dir/directory.cc.o.d"
  "/root/repo/src/proto/fault.cc" "src/proto/CMakeFiles/drf_proto.dir/fault.cc.o" "gcc" "src/proto/CMakeFiles/drf_proto.dir/fault.cc.o.d"
  "/root/repo/src/proto/gpu_l1.cc" "src/proto/CMakeFiles/drf_proto.dir/gpu_l1.cc.o" "gcc" "src/proto/CMakeFiles/drf_proto.dir/gpu_l1.cc.o.d"
  "/root/repo/src/proto/gpu_l2.cc" "src/proto/CMakeFiles/drf_proto.dir/gpu_l2.cc.o" "gcc" "src/proto/CMakeFiles/drf_proto.dir/gpu_l2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/drf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/drf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/drf_coverage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
