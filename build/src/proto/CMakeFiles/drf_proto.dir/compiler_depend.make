# Empty compiler generated dependencies file for drf_proto.
# This may be replaced when dependencies are built.
