file(REMOVE_RECURSE
  "libdrf_system.a"
)
