# Empty dependencies file for drf_system.
# This may be replaced when dependencies are built.
