file(REMOVE_RECURSE
  "CMakeFiles/drf_system.dir/apu_system.cc.o"
  "CMakeFiles/drf_system.dir/apu_system.cc.o.d"
  "libdrf_system.a"
  "libdrf_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drf_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
