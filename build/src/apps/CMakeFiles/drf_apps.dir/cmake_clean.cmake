file(REMOVE_RECURSE
  "CMakeFiles/drf_apps.dir/app_runner.cc.o"
  "CMakeFiles/drf_apps.dir/app_runner.cc.o.d"
  "CMakeFiles/drf_apps.dir/app_suite.cc.o"
  "CMakeFiles/drf_apps.dir/app_suite.cc.o.d"
  "CMakeFiles/drf_apps.dir/app_trace.cc.o"
  "CMakeFiles/drf_apps.dir/app_trace.cc.o.d"
  "CMakeFiles/drf_apps.dir/dma.cc.o"
  "CMakeFiles/drf_apps.dir/dma.cc.o.d"
  "CMakeFiles/drf_apps.dir/gpu_core.cc.o"
  "CMakeFiles/drf_apps.dir/gpu_core.cc.o.d"
  "CMakeFiles/drf_apps.dir/locality.cc.o"
  "CMakeFiles/drf_apps.dir/locality.cc.o.d"
  "libdrf_apps.a"
  "libdrf_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drf_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
