# Empty dependencies file for drf_apps.
# This may be replaced when dependencies are built.
