file(REMOVE_RECURSE
  "libdrf_apps.a"
)
