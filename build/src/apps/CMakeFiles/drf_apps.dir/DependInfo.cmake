
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_runner.cc" "src/apps/CMakeFiles/drf_apps.dir/app_runner.cc.o" "gcc" "src/apps/CMakeFiles/drf_apps.dir/app_runner.cc.o.d"
  "/root/repo/src/apps/app_suite.cc" "src/apps/CMakeFiles/drf_apps.dir/app_suite.cc.o" "gcc" "src/apps/CMakeFiles/drf_apps.dir/app_suite.cc.o.d"
  "/root/repo/src/apps/app_trace.cc" "src/apps/CMakeFiles/drf_apps.dir/app_trace.cc.o" "gcc" "src/apps/CMakeFiles/drf_apps.dir/app_trace.cc.o.d"
  "/root/repo/src/apps/dma.cc" "src/apps/CMakeFiles/drf_apps.dir/dma.cc.o" "gcc" "src/apps/CMakeFiles/drf_apps.dir/dma.cc.o.d"
  "/root/repo/src/apps/gpu_core.cc" "src/apps/CMakeFiles/drf_apps.dir/gpu_core.cc.o" "gcc" "src/apps/CMakeFiles/drf_apps.dir/gpu_core.cc.o.d"
  "/root/repo/src/apps/locality.cc" "src/apps/CMakeFiles/drf_apps.dir/locality.cc.o" "gcc" "src/apps/CMakeFiles/drf_apps.dir/locality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/drf_system.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/drf_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/drf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/drf_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
