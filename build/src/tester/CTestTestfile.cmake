# CMake generated Testfile for 
# Source directory: /root/repo/src/tester
# Build directory: /root/repo/build/src/tester
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
