# Empty dependencies file for drf_tester.
# This may be replaced when dependencies are built.
