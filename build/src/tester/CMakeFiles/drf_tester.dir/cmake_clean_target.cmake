file(REMOVE_RECURSE
  "libdrf_tester.a"
)
