file(REMOVE_RECURSE
  "CMakeFiles/drf_tester.dir/configs.cc.o"
  "CMakeFiles/drf_tester.dir/configs.cc.o.d"
  "CMakeFiles/drf_tester.dir/cpu_tester.cc.o"
  "CMakeFiles/drf_tester.dir/cpu_tester.cc.o.d"
  "CMakeFiles/drf_tester.dir/episode.cc.o"
  "CMakeFiles/drf_tester.dir/episode.cc.o.d"
  "CMakeFiles/drf_tester.dir/gpu_tester.cc.o"
  "CMakeFiles/drf_tester.dir/gpu_tester.cc.o.d"
  "CMakeFiles/drf_tester.dir/ref_memory.cc.o"
  "CMakeFiles/drf_tester.dir/ref_memory.cc.o.d"
  "CMakeFiles/drf_tester.dir/variable_map.cc.o"
  "CMakeFiles/drf_tester.dir/variable_map.cc.o.d"
  "libdrf_tester.a"
  "libdrf_tester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drf_tester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
