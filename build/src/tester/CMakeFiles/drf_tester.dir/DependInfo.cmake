
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tester/configs.cc" "src/tester/CMakeFiles/drf_tester.dir/configs.cc.o" "gcc" "src/tester/CMakeFiles/drf_tester.dir/configs.cc.o.d"
  "/root/repo/src/tester/cpu_tester.cc" "src/tester/CMakeFiles/drf_tester.dir/cpu_tester.cc.o" "gcc" "src/tester/CMakeFiles/drf_tester.dir/cpu_tester.cc.o.d"
  "/root/repo/src/tester/episode.cc" "src/tester/CMakeFiles/drf_tester.dir/episode.cc.o" "gcc" "src/tester/CMakeFiles/drf_tester.dir/episode.cc.o.d"
  "/root/repo/src/tester/gpu_tester.cc" "src/tester/CMakeFiles/drf_tester.dir/gpu_tester.cc.o" "gcc" "src/tester/CMakeFiles/drf_tester.dir/gpu_tester.cc.o.d"
  "/root/repo/src/tester/ref_memory.cc" "src/tester/CMakeFiles/drf_tester.dir/ref_memory.cc.o" "gcc" "src/tester/CMakeFiles/drf_tester.dir/ref_memory.cc.o.d"
  "/root/repo/src/tester/variable_map.cc" "src/tester/CMakeFiles/drf_tester.dir/variable_map.cc.o" "gcc" "src/tester/CMakeFiles/drf_tester.dir/variable_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/drf_system.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/drf_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/drf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/drf_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
