
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_array.cc" "src/mem/CMakeFiles/drf_mem.dir/cache_array.cc.o" "gcc" "src/mem/CMakeFiles/drf_mem.dir/cache_array.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/mem/CMakeFiles/drf_mem.dir/memory.cc.o" "gcc" "src/mem/CMakeFiles/drf_mem.dir/memory.cc.o.d"
  "/root/repo/src/mem/msg.cc" "src/mem/CMakeFiles/drf_mem.dir/msg.cc.o" "gcc" "src/mem/CMakeFiles/drf_mem.dir/msg.cc.o.d"
  "/root/repo/src/mem/network.cc" "src/mem/CMakeFiles/drf_mem.dir/network.cc.o" "gcc" "src/mem/CMakeFiles/drf_mem.dir/network.cc.o.d"
  "/root/repo/src/mem/port.cc" "src/mem/CMakeFiles/drf_mem.dir/port.cc.o" "gcc" "src/mem/CMakeFiles/drf_mem.dir/port.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/drf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
