file(REMOVE_RECURSE
  "libdrf_mem.a"
)
