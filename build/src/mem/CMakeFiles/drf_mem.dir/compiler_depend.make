# Empty compiler generated dependencies file for drf_mem.
# This may be replaced when dependencies are built.
