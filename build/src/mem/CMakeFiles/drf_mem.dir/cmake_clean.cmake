file(REMOVE_RECURSE
  "CMakeFiles/drf_mem.dir/cache_array.cc.o"
  "CMakeFiles/drf_mem.dir/cache_array.cc.o.d"
  "CMakeFiles/drf_mem.dir/memory.cc.o"
  "CMakeFiles/drf_mem.dir/memory.cc.o.d"
  "CMakeFiles/drf_mem.dir/msg.cc.o"
  "CMakeFiles/drf_mem.dir/msg.cc.o.d"
  "CMakeFiles/drf_mem.dir/network.cc.o"
  "CMakeFiles/drf_mem.dir/network.cc.o.d"
  "CMakeFiles/drf_mem.dir/port.cc.o"
  "CMakeFiles/drf_mem.dir/port.cc.o.d"
  "libdrf_mem.a"
  "libdrf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
