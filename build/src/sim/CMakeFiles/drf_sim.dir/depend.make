# Empty dependencies file for drf_sim.
# This may be replaced when dependencies are built.
