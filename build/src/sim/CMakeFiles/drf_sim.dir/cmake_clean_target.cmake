file(REMOVE_RECURSE
  "libdrf_sim.a"
)
