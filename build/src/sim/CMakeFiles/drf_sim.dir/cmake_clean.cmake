file(REMOVE_RECURSE
  "CMakeFiles/drf_sim.dir/event_queue.cc.o"
  "CMakeFiles/drf_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/drf_sim.dir/logger.cc.o"
  "CMakeFiles/drf_sim.dir/logger.cc.o.d"
  "libdrf_sim.a"
  "libdrf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
