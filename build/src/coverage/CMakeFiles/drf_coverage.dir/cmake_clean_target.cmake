file(REMOVE_RECURSE
  "libdrf_coverage.a"
)
