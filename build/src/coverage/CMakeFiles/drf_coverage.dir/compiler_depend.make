# Empty compiler generated dependencies file for drf_coverage.
# This may be replaced when dependencies are built.
