file(REMOVE_RECURSE
  "CMakeFiles/drf_coverage.dir/coverage.cc.o"
  "CMakeFiles/drf_coverage.dir/coverage.cc.o.d"
  "libdrf_coverage.a"
  "libdrf_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drf_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
