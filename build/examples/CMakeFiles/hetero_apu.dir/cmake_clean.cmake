file(REMOVE_RECURSE
  "CMakeFiles/hetero_apu.dir/hetero_apu.cpp.o"
  "CMakeFiles/hetero_apu.dir/hetero_apu.cpp.o.d"
  "hetero_apu"
  "hetero_apu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
