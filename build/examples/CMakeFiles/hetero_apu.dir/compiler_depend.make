# Empty compiler generated dependencies file for hetero_apu.
# This may be replaced when dependencies are built.
