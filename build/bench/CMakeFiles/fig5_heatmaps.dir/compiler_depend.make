# Empty compiler generated dependencies file for fig5_heatmaps.
# This may be replaced when dependencies are built.
