file(REMOVE_RECURSE
  "CMakeFiles/fig5_heatmaps.dir/fig5_heatmaps.cc.o"
  "CMakeFiles/fig5_heatmaps.dir/fig5_heatmaps.cc.o.d"
  "fig5_heatmaps"
  "fig5_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
