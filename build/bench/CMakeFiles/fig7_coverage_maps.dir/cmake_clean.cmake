file(REMOVE_RECURSE
  "CMakeFiles/fig7_coverage_maps.dir/fig7_coverage_maps.cc.o"
  "CMakeFiles/fig7_coverage_maps.dir/fig7_coverage_maps.cc.o.d"
  "fig7_coverage_maps"
  "fig7_coverage_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_coverage_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
