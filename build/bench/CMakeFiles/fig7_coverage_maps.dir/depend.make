# Empty dependencies file for fig7_coverage_maps.
# This may be replaced when dependencies are built.
