# Empty compiler generated dependencies file for ablation_falsesharing.
# This may be replaced when dependencies are built.
