file(REMOVE_RECURSE
  "CMakeFiles/ablation_falsesharing.dir/ablation_falsesharing.cc.o"
  "CMakeFiles/ablation_falsesharing.dir/ablation_falsesharing.cc.o.d"
  "ablation_falsesharing"
  "ablation_falsesharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_falsesharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
