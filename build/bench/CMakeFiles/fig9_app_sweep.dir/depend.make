# Empty dependencies file for fig9_app_sweep.
# This may be replaced when dependencies are built.
