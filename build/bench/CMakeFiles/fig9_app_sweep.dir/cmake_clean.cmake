file(REMOVE_RECURSE
  "CMakeFiles/fig9_app_sweep.dir/fig9_app_sweep.cc.o"
  "CMakeFiles/fig9_app_sweep.dir/fig9_app_sweep.cc.o.d"
  "fig9_app_sweep"
  "fig9_app_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_app_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
