file(REMOVE_RECURSE
  "CMakeFiles/table5_bug_report.dir/table5_bug_report.cc.o"
  "CMakeFiles/table5_bug_report.dir/table5_bug_report.cc.o.d"
  "table5_bug_report"
  "table5_bug_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_bug_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
