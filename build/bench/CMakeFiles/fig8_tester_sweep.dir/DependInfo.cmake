
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_tester_sweep.cc" "bench/CMakeFiles/fig8_tester_sweep.dir/fig8_tester_sweep.cc.o" "gcc" "bench/CMakeFiles/fig8_tester_sweep.dir/fig8_tester_sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tester/CMakeFiles/drf_tester.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/drf_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/drf_system.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/drf_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/drf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/drf_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
