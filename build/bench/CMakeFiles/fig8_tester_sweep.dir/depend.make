# Empty dependencies file for fig8_tester_sweep.
# This may be replaced when dependencies are built.
