file(REMOVE_RECURSE
  "CMakeFiles/fig10_directory.dir/fig10_directory.cc.o"
  "CMakeFiles/fig10_directory.dir/fig10_directory.cc.o.d"
  "fig10_directory"
  "fig10_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
