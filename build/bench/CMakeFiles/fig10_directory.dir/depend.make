# Empty dependencies file for fig10_directory.
# This may be replaced when dependencies are built.
