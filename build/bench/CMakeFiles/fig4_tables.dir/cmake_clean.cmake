file(REMOVE_RECURSE
  "CMakeFiles/fig4_tables.dir/fig4_tables.cc.o"
  "CMakeFiles/fig4_tables.dir/fig4_tables.cc.o.d"
  "fig4_tables"
  "fig4_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
