# Empty dependencies file for fig4_tables.
# This may be replaced when dependencies are built.
