# Empty compiler generated dependencies file for drf_tests.
# This may be replaced when dependencies are built.
