
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/drf_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_cache_array.cc" "tests/CMakeFiles/drf_tests.dir/test_cache_array.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_cache_array.cc.o.d"
  "/root/repo/tests/test_coverage.cc" "tests/CMakeFiles/drf_tests.dir/test_coverage.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_coverage.cc.o.d"
  "/root/repo/tests/test_cpu_cache.cc" "tests/CMakeFiles/drf_tests.dir/test_cpu_cache.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_cpu_cache.cc.o.d"
  "/root/repo/tests/test_cpu_tester.cc" "tests/CMakeFiles/drf_tests.dir/test_cpu_tester.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_cpu_tester.cc.o.d"
  "/root/repo/tests/test_directory.cc" "tests/CMakeFiles/drf_tests.dir/test_directory.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_directory.cc.o.d"
  "/root/repo/tests/test_episode.cc" "tests/CMakeFiles/drf_tests.dir/test_episode.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_episode.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/drf_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_gpu_l1.cc" "tests/CMakeFiles/drf_tests.dir/test_gpu_l1.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_gpu_l1.cc.o.d"
  "/root/repo/tests/test_gpu_l2.cc" "tests/CMakeFiles/drf_tests.dir/test_gpu_l2.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_gpu_l2.cc.o.d"
  "/root/repo/tests/test_gpu_tester.cc" "tests/CMakeFiles/drf_tests.dir/test_gpu_tester.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_gpu_tester.cc.o.d"
  "/root/repo/tests/test_logger_stats.cc" "tests/CMakeFiles/drf_tests.dir/test_logger_stats.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_logger_stats.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/drf_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_multigpu.cc" "tests/CMakeFiles/drf_tests.dir/test_multigpu.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_multigpu.cc.o.d"
  "/root/repo/tests/test_port_network.cc" "tests/CMakeFiles/drf_tests.dir/test_port_network.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_port_network.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/drf_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_ref_memory.cc" "tests/CMakeFiles/drf_tests.dir/test_ref_memory.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_ref_memory.cc.o.d"
  "/root/repo/tests/test_soak.cc" "tests/CMakeFiles/drf_tests.dir/test_soak.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_soak.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/drf_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_variable_map.cc" "tests/CMakeFiles/drf_tests.dir/test_variable_map.cc.o" "gcc" "tests/CMakeFiles/drf_tests.dir/test_variable_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tester/CMakeFiles/drf_tester.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/drf_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/drf_system.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/drf_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/drf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/drf_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/drf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
