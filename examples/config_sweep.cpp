/**
 * @file
 * Configuration-space exploration (Section IV.A): shows how the
 * tester's knobs — cache size class, address range, episode length —
 * steer it toward different subsets of the transition space, which is
 * why a sweep of cheap configurations beats one long run.
 *
 * The variants run as one campaign (they are independent simulations);
 * pass --jobs N to run them on N worker threads. Per-variant numbers
 * are identical either way.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "system/apu_system.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

struct Variant
{
    const char *label;
    CacheSizeClass cacheClass;
    std::uint64_t addrRange;
    unsigned actionsPerEpisode;
};

GpuTestPreset
variantPreset(const Variant &v)
{
    GpuTestPreset preset;
    preset.name = v.label;
    preset.cacheClass = v.cacheClass;
    preset.system = makeGpuSystemConfig(v.cacheClass, 8);
    preset.tester = makeGpuTesterConfig(v.actionsPerEpisode,
                                        /*episodes=*/15,
                                        /*atomic_locs=*/10,
                                        /*seed=*/77);
    preset.tester.variables.addrRangeBytes = v.addrRange;
    // Keep the variable count below the tightest range's capacity.
    preset.tester.variables.numNormalVars = 2048;
    return preset;
}

unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--jobs")
            return static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Tester configuration-space exploration\n");
    std::printf("(same seed and test length; only the knobs below "
                "change)\n\n");

    const Variant variants[] = {
        {"baseline", CacheSizeClass::Small, 1 << 20, 100},
        {"large caches (hits)", CacheSizeClass::Large, 1 << 20, 100},
        {"mixed caches", CacheSizeClass::Mixed, 1 << 20, 100},
        {"tight addresses (sharing)", CacheSizeClass::Small, 1 << 14,
         100},
        {"long episodes", CacheSizeClass::Small, 1 << 20, 200},
        {"tight + long", CacheSizeClass::Small, 1 << 14, 200},
    };

    std::vector<ShardSpec> shards;
    std::vector<CacheSizeClass> classes;
    for (const Variant &v : variants) {
        shards.push_back(gpuShard(variantPreset(v)));
        classes.push_back(v.cacheClass);
    }

    CampaignConfig cfg;
    cfg.jobs = parseJobs(argc, argv);
    cfg.stopOnFailure = false; // show every variant, even on failure
    cfg.keepOutcomes = true;
    CampaignResult res = runCampaign(std::move(shards), cfg);

    for (const ShardOutcome &out : res.outcomes) {
        std::printf("%-26s %-6s L1 %5.1f%%  L2 %5.1f%%  "
                    "[Repl,V]=%-7llu [Load,V]=%-8llu stalls=%llu  %s\n",
                    out.name.c_str(),
                    cacheSizeClassName(classes[out.index]),
                    out.l1->coveragePct("gpu_tester"),
                    out.l2->coveragePct("gpu_tester"),
                    (unsigned long long)out.l1->count(GpuL1Cache::EvRepl,
                                                      GpuL1Cache::StV),
                    (unsigned long long)out.l1->count(GpuL1Cache::EvLoad,
                                                      GpuL1Cache::StV),
                    (unsigned long long)out.l2->count(GpuL2Cache::EvRdBlk,
                                                      GpuL2Cache::StIV),
                    out.result.passed ? "ok" : "FAILED");
    }

    std::printf("\nsmall caches stress replacements; large caches "
                "stress hits; tight address ranges stress transient "
                "collisions (stalls) — combine configurations to cover "
                "the whole space.\n");
    return res.passed ? 0 : 1;
}
