/**
 * @file
 * Configuration-space exploration (Section IV.A): shows how the
 * tester's knobs — cache size class, address range, episode length —
 * steer it toward different subsets of the transition space, which is
 * why a sweep of cheap configurations beats one long run.
 */

#include <cstdio>

#include "system/apu_system.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

struct Variant
{
    const char *label;
    CacheSizeClass cacheClass;
    std::uint64_t addrRange;
    unsigned actionsPerEpisode;
};

void
runVariant(const Variant &v)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(v.cacheClass, 8);
    ApuSystem sys(sys_cfg);

    GpuTesterConfig cfg = makeGpuTesterConfig(v.actionsPerEpisode,
                                              /*episodes=*/15,
                                              /*atomic_locs=*/10,
                                              /*seed=*/77);
    cfg.variables.addrRangeBytes = v.addrRange;
    // Keep the variable count below the tightest range's capacity.
    cfg.variables.numNormalVars = 2048;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();

    CoverageGrid l1 = sys.l1CoverageUnion();
    const CoverageGrid &l2 = sys.l2().coverage();

    std::printf("%-26s %-6s L1 %5.1f%%  L2 %5.1f%%  "
                "[Repl,V]=%-7llu [Load,V]=%-8llu stalls=%llu  %s\n",
                v.label, cacheSizeClassName(v.cacheClass),
                l1.coveragePct("gpu_tester"),
                l2.coveragePct("gpu_tester"),
                (unsigned long long)l1.count(GpuL1Cache::EvRepl,
                                             GpuL1Cache::StV),
                (unsigned long long)l1.count(GpuL1Cache::EvLoad,
                                             GpuL1Cache::StV),
                (unsigned long long)l2.count(GpuL2Cache::EvRdBlk,
                                             GpuL2Cache::StIV),
                r.passed ? "ok" : "FAILED");
}

} // namespace

int
main()
{
    std::printf("Tester configuration-space exploration\n");
    std::printf("(same seed and test length; only the knobs below "
                "change)\n\n");

    const Variant variants[] = {
        {"baseline", CacheSizeClass::Small, 1 << 20, 100},
        {"large caches (hits)", CacheSizeClass::Large, 1 << 20, 100},
        {"mixed caches", CacheSizeClass::Mixed, 1 << 20, 100},
        {"tight addresses (sharing)", CacheSizeClass::Small, 1 << 14,
         100},
        {"long episodes", CacheSizeClass::Small, 1 << 20, 200},
        {"tight + long", CacheSizeClass::Small, 1 << 14, 200},
    };
    for (const Variant &v : variants)
        runVariant(v);

    std::printf("\nsmall caches stress replacements; large caches "
                "stress hits; tight address ranges stress transient "
                "collisions (stalls) — combine configurations to cover "
                "the whole space.\n");
    return 0;
}
