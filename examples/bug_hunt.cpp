/**
 * @file
 * Bug hunt: inject a realistic protocol bug into the VIPER GPU L2 —
 * racing false-sharing write-throughs are not serialized correctly, the
 * Section V case study — and watch the autonomous tester find it and
 * produce a Table V-style report a protocol designer can act on.
 *
 * The same flow works for every FaultKind; pass a bug name as argv[1]:
 *   bug_hunt [LostWriteThrough|NonAtomicRmw|DropAcquireInvalidate|
 *             DropWriteAck|None]
 */

#include <cstdio>
#include <cstring>

#include "system/apu_system.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

FaultKind
parseBug(const char *name)
{
    for (FaultKind kind :
         {FaultKind::None, FaultKind::LostWriteThrough,
          FaultKind::NonAtomicRmw, FaultKind::DropAcquireInvalidate,
          FaultKind::DropGpuProbe, FaultKind::DropWriteAck}) {
        if (std::strcmp(name, faultKindName(kind)) == 0)
            return kind;
    }
    std::fprintf(stderr, "unknown bug '%s', using LostWriteThrough\n",
                 name);
    return FaultKind::LostWriteThrough;
}

} // namespace

int
main(int argc, char **argv)
{
    FaultKind bug = argc > 1 ? parseBug(argv[1])
                             : FaultKind::LostWriteThrough;

    std::printf("arming protocol bug: %s\n", faultKindName(bug));

    // Large caches keep stale data alive longer; a 25%% trigger rate
    // makes the bug intermittent, like real protocol bugs are.
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(
        bug == FaultKind::DropAcquireInvalidate ? CacheSizeClass::Large
                                                : CacheSizeClass::Small,
        /*num_cus=*/8);
    sys_cfg.fault = bug;
    sys_cfg.faultTriggerPct = 25;
    ApuSystem sys(sys_cfg);

    GpuTesterConfig cfg = makeGpuTesterConfig(/*actions=*/100,
                                              /*episodes=*/50,
                                              /*atomic_locs=*/10,
                                              /*seed=*/2024);
    GpuTester tester(sys, cfg);
    TesterResult result = tester.run();

    if (result.passed) {
        std::printf("tester PASSED (%llu episodes, %llu loads checked)"
                    "%s\n",
                    (unsigned long long)result.episodes,
                    (unsigned long long)result.loadsChecked,
                    bug == FaultKind::None
                        ? "" : " — bug armed but never triggered a "
                               "checkable effect; lengthen the run");
        return bug == FaultKind::None ? 0 : 1;
    }

    std::printf("\ntester caught the bug after %llu simulated cycles "
                "(%.3f s host time):\n\n%s\n",
                (unsigned long long)result.ticks, result.hostSeconds,
                result.report.c_str());
    std::printf("fault sites fired: %llu\n",
                (unsigned long long)(sys.fault() != nullptr
                                         ? sys.fault()->firings()
                                         : 0));
    return 0;
}
