/**
 * @file
 * Heterogeneous APU testing (Section IV.C): one shared system directory
 * serves both a GPU (VIPER) and CPU core pairs (MSI). The GPU tester
 * and the CPU tester run against the same system over disjoint address
 * ranges; their union covers directory transitions neither could reach
 * alone, and the run double-checks the integrated CPU-GPU protocol
 * end to end.
 */

#include <cstdio>
#include <iostream>

#include "system/apu_system.hh"
#include "tester/configs.hh"
#include "tester/cpu_tester.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

int
main()
{
    // A full APU: 4 CUs + 2 CPU core pairs behind one directory.
    ApuSystemConfig cfg = makeGpuSystemConfig(CacheSizeClass::Small, 4);
    cfg.numCpuCaches = 2;
    cfg.cpu.sizeBytes = 512;
    cfg.cpu.assoc = 2;
    ApuSystem sys(cfg);

    // CPU tester on [16M, 16M+2K): small range, heavy contention.
    CpuTesterConfig cpu_cfg;
    cpu_cfg.addrBase = 16 << 20;
    cpu_cfg.addrRangeBytes = 2048;
    cpu_cfg.targetLoads = 20'000;
    cpu_cfg.seed = 31;
    CpuTester cpu_tester(sys, cpu_cfg);

    // GPU tester on [0, 1M).
    GpuTesterConfig gpu_cfg = makeGpuTesterConfig(
        /*actions=*/100, /*episodes=*/20, /*atomic_locs=*/10,
        /*seed=*/32);
    GpuTester gpu_tester(sys, gpu_cfg);

    std::printf("running the CPU tester on the shared APU...\n");
    TesterResult cpu_result = cpu_tester.run();
    std::printf("  %s: %llu loads checked, %llu stores, %.3f s\n",
                cpu_result.passed ? "PASSED" : "FAILED",
                (unsigned long long)cpu_result.loadsChecked,
                (unsigned long long)cpu_result.storesRetired,
                cpu_result.hostSeconds);
    if (!cpu_result.passed)
        std::printf("%s\n", cpu_result.report.c_str());

    std::printf("running the GPU tester on the same APU...\n");
    TesterResult gpu_result = gpu_tester.run();
    std::printf("  %s: %llu episodes, %llu loads checked, %.3f s\n",
                gpu_result.passed ? "PASSED" : "FAILED",
                (unsigned long long)gpu_result.episodes,
                (unsigned long long)gpu_result.loadsChecked,
                gpu_result.hostSeconds);
    if (!gpu_result.passed)
        std::printf("%s\n", gpu_result.report.c_str());

    std::printf("\nshared system directory after both testers:\n");
    sys.directory().coverage().renderClassMap(std::cout, "tester_union");
    std::printf("\ndirectory transitions active: %zu of %zu defined "
                "(%.1f%% of the union-reachable set)\n",
                sys.directory().coverage().activeCount(""),
                Directory::spec().definedCount(),
                sys.directory().coverage().coveragePct("tester_union"));
    std::printf("note: the DMA transitions stay inactive — only "
                "application-style traffic reaches them (Fig. 10).\n");

    return cpu_result.passed && gpu_result.passed ? 0 : 1;
}
