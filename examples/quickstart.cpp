/**
 * @file
 * Quickstart: build an 8-CU VIPER GPU system, run the DRF random tester
 * against it, and print the outcome plus the transition coverage it
 * achieved — the whole public API in ~60 lines.
 */

#include <cstdio>
#include <iostream>

#include "system/apu_system.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

int
main()
{
    using namespace drf;

    // A Table III "small cache" GPU system: 8 CUs, 256 B L1s, 1 KB L2.
    ApuSystemConfig sys_cfg =
        makeGpuSystemConfig(CacheSizeClass::Small, /*num_cus=*/8);
    ApuSystem sys(sys_cfg);

    // A short tester run: 2 wavefronts per CU, 10 episodes each,
    // 100 actions per episode, 10 atomic locations.
    GpuTesterConfig tester_cfg = makeGpuTesterConfig(
        /*actions_per_episode=*/100, /*episodes_per_wf=*/10,
        /*atomic_locs=*/10, /*seed=*/42);

    GpuTester tester(sys, tester_cfg);
    TesterResult result = tester.run();

    std::printf("tester: %s\n", result.passed ? "PASSED" : "FAILED");
    if (!result.passed)
        std::printf("%s\n", result.report.c_str());
    std::printf("episodes retired : %llu\n",
                (unsigned long long)result.episodes);
    std::printf("loads checked    : %llu\n",
                (unsigned long long)result.loadsChecked);
    std::printf("atomics checked  : %llu\n",
                (unsigned long long)result.atomicsChecked);
    std::printf("simulated ticks  : %llu\n",
                (unsigned long long)result.ticks);
    std::printf("events executed  : %llu\n",
                (unsigned long long)result.events);
    std::printf("host time        : %.3f s\n", result.hostSeconds);

    // Coverage achieved on the two GPU controllers.
    CoverageGrid l1 = sys.l1CoverageUnion();
    std::printf("\nGPU L1 coverage  : %.1f%% of reachable transitions\n",
                l1.coveragePct("gpu_tester"));
    std::printf("GPU L2 coverage  : %.1f%% of reachable transitions\n\n",
                sys.l2().coverage().coveragePct("gpu_tester"));

    l1.renderHeatMap(std::cout);
    std::cout << "\n";
    sys.l2().coverage().renderHeatMap(std::cout);

    return result.passed ? 0 : 1;
}
